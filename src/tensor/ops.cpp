#include "src/tensor/ops.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/common/threadpool.hpp"

namespace haccs::ops {

namespace {

void check_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string("gemm: ") + name +
                                " must be rank-2, got " + t.shape_string());
  }
}

// Minimum per-thread row count before parallel dispatch pays off.
constexpr std::size_t kParallelRowThreshold = 64;

template <typename Kernel>
void dispatch_rows(std::size_t m, Kernel&& kernel) {
  if (m >= kParallelRowThreshold && ThreadPool::global().size() > 0) {
    parallel_for(0, m, kernel);
  } else {
    for (std::size_t i = 0; i < m; ++i) kernel(i);
  }
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t m = a.extent(0), k = a.extent(1), n = b.extent(1);
  if (b.extent(0) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm: shape mismatch " + a.shape_string() +
                                " x " + b.shape_string() + " -> " +
                                c.shape_string());
  }
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  dispatch_rows(m, [&](std::size_t i) {
    float* crow = pc + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    const float* arow = pa + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  });
}

void gemm_bt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t m = a.extent(0), k = a.extent(1), n = b.extent(0);
  if (b.extent(1) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm_bt: shape mismatch");
  }
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  dispatch_rows(m, [&](std::size_t i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = accumulate ? crow[j] : 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  });
}

void gemm_at(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  check_matrix(c, "C");
  const std::size_t k = a.extent(0), m = a.extent(1), n = b.extent(1);
  if (b.extent(0) != k || c.extent(0) != m || c.extent(1) != n) {
    throw std::invalid_argument("gemm_at: shape mismatch");
  }
  if (!accumulate) c.fill(0.0f);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // C[i][j] += sum_kk A[kk][i] * B[kk][j]; iterate kk outermost for
  // sequential access to both A and B rows.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

namespace {

void check_conv_shapes(const Conv2dShape& s, const Tensor& input,
                       const Tensor& weight, const Tensor& bias) {
  HACCS_CHECK_MSG(s.kernel > 0 && s.stride > 0, "conv2d: bad kernel/stride");
  HACCS_CHECK_MSG(s.in_h + 2 * s.padding >= s.kernel &&
                      s.in_w + 2 * s.padding >= s.kernel,
                  "conv2d: kernel larger than padded input");
  if (input.rank() != 4 || input.extent(0) != s.batch ||
      input.extent(1) != s.in_channels || input.extent(2) != s.in_h ||
      input.extent(3) != s.in_w) {
    throw std::invalid_argument("conv2d: input shape mismatch " +
                                input.shape_string());
  }
  if (weight.rank() != 4 || weight.extent(0) != s.out_channels ||
      weight.extent(1) != s.in_channels || weight.extent(2) != s.kernel ||
      weight.extent(3) != s.kernel) {
    throw std::invalid_argument("conv2d: weight shape mismatch " +
                                weight.shape_string());
  }
  if (bias.rank() != 1 || bias.extent(0) != s.out_channels) {
    throw std::invalid_argument("conv2d: bias shape mismatch");
  }
}

}  // namespace

void im2col(const Conv2dShape& s, const float* sample, float* columns) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const std::size_t out_plane = oh * ow;
  const std::size_t in_plane = s.in_h * s.in_w;
  // Row (ci, ky, kx), column (y, x): the input pixel feeding that tap.
  std::size_t row = 0;
  for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
    const float* in_c = sample + ci * in_plane;
    for (std::size_t ky = 0; ky < s.kernel; ++ky) {
      for (std::size_t kx = 0; kx < s.kernel; ++kx, ++row) {
        float* out_row = columns + row * out_plane;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * s.stride + ky) -
              static_cast<std::ptrdiff_t>(s.padding);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) {
            std::fill(out_row + y * ow, out_row + (y + 1) * ow, 0.0f);
            continue;
          }
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                static_cast<std::ptrdiff_t>(s.padding);
            out_row[y * ow + x] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w))
                    ? 0.0f
                    : in_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix];
          }
        }
      }
    }
  }
}

void conv2d_forward_im2col(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output) {
  check_conv_shapes(s, input, weight, bias);
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const std::size_t out_plane = oh * ow;
  const std::size_t patch = s.in_channels * s.kernel * s.kernel;
  if (output.size() != s.batch * s.out_channels * out_plane) {
    throw std::invalid_argument("conv2d: output shape mismatch");
  }
  // Weight as (Cout, patch) and columns as (patch, out_plane):
  // output_n = W * columns + bias.
  const Tensor weight2d = weight.reshaped({s.out_channels, patch});
  const float* b = bias.raw();
  dispatch_rows(s.batch, [&](std::size_t n) {
    Tensor columns({patch, out_plane});
    im2col(s, input.raw() + n * s.in_channels * s.in_h * s.in_w,
           columns.raw());
    Tensor out_n({s.out_channels, out_plane});
    gemm(weight2d, columns, out_n);
    float* dst = output.raw() + n * s.out_channels * out_plane;
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      const float* src = out_n.raw() + co * out_plane;
      const float bias_c = b[co];
      for (std::size_t i = 0; i < out_plane; ++i) {
        dst[co * out_plane + i] = src[i] + bias_c;
      }
    }
  });
}

void conv2d_forward(const Conv2dShape& s, const Tensor& input,
                    const Tensor& weight, const Tensor& bias, Tensor& output) {
  // The GEMM path wins once the patch matrix has real volume; tiny kernels
  // on tiny images are faster through the direct loops (no packing).
  const std::size_t work =
      s.in_channels * s.kernel * s.kernel * s.out_h() * s.out_w();
  if (work >= 4096) {
    conv2d_forward_im2col(s, input, weight, bias, output);
  } else {
    conv2d_forward_direct(s, input, weight, bias, output);
  }
}

void conv2d_forward_direct(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output) {
  check_conv_shapes(s, input, weight, bias);
  const std::size_t oh = s.out_h(), ow = s.out_w();
  if (output.rank() != 4 || output.extent(0) != s.batch ||
      output.extent(1) != s.out_channels || output.extent(2) != oh ||
      output.extent(3) != ow) {
    throw std::invalid_argument("conv2d: output shape mismatch");
  }
  const float* in = input.raw();
  const float* w = weight.raw();
  const float* b = bias.raw();
  float* out = output.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  dispatch_rows(s.batch, [&](std::size_t n) {
    const float* in_n = in + n * s.in_channels * in_plane;
    float* out_n = out + n * s.out_channels * out_plane;
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      float* out_c = out_n + co * out_plane;
      const float bias_c = b[co];
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          float acc = bias_c;
          for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
            const float* in_c = in_n + ci * in_plane;
            const float* w_c = w + (co * s.in_channels + ci) * s.kernel * s.kernel;
            for (std::size_t ky = 0; ky < s.kernel; ++ky) {
              // signed arithmetic for the padded coordinate
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y * s.stride + ky) -
                  static_cast<std::ptrdiff_t>(s.padding);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) continue;
              for (std::size_t kx = 0; kx < s.kernel; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                    static_cast<std::ptrdiff_t>(s.padding);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w)) continue;
                acc += in_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix] *
                       w_c[ky * s.kernel + kx];
              }
            }
          }
          out_c[y * ow + x] = acc;
        }
      }
    }
  });
}

void conv2d_backward_input(const Conv2dShape& s, const Tensor& grad_output,
                           const Tensor& weight, Tensor& grad_input) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  HACCS_CHECK_MSG(grad_output.rank() == 4 && grad_output.extent(2) == oh &&
                      grad_output.extent(3) == ow,
                  "conv2d_backward_input: grad_output shape");
  grad_input.fill(0.0f);
  const float* go = grad_output.raw();
  const float* w = weight.raw();
  float* gi = grad_input.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  dispatch_rows(s.batch, [&](std::size_t n) {
    const float* go_n = go + n * s.out_channels * out_plane;
    float* gi_n = gi + n * s.in_channels * in_plane;
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      const float* go_c = go_n + co * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          const float g = go_c[y * ow + x];
          if (g == 0.0f) continue;
          for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
            float* gi_c = gi_n + ci * in_plane;
            const float* w_c =
                w + (co * s.in_channels + ci) * s.kernel * s.kernel;
            for (std::size_t ky = 0; ky < s.kernel; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y * s.stride + ky) -
                  static_cast<std::ptrdiff_t>(s.padding);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) continue;
              for (std::size_t kx = 0; kx < s.kernel; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                    static_cast<std::ptrdiff_t>(s.padding);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w)) continue;
                gi_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix] +=
                    g * w_c[ky * s.kernel + kx];
              }
            }
          }
        }
      }
    }
  });
}

void conv2d_backward_params(const Conv2dShape& s, const Tensor& input,
                            const Tensor& grad_output, Tensor& grad_weight,
                            Tensor& grad_bias) {
  const std::size_t oh = s.out_h(), ow = s.out_w();
  const float* in = input.raw();
  const float* go = grad_output.raw();
  float* gw = grad_weight.raw();
  float* gb = grad_bias.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  // Serial over batch: grad accumulators are shared across samples.
  for (std::size_t n = 0; n < s.batch; ++n) {
    const float* in_n = in + n * s.in_channels * in_plane;
    const float* go_n = go + n * s.out_channels * out_plane;
    for (std::size_t co = 0; co < s.out_channels; ++co) {
      const float* go_c = go_n + co * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          const float g = go_c[y * ow + x];
          if (g == 0.0f) continue;
          gb[co] += g;
          for (std::size_t ci = 0; ci < s.in_channels; ++ci) {
            const float* in_c = in_n + ci * in_plane;
            float* gw_c = gw + (co * s.in_channels + ci) * s.kernel * s.kernel;
            for (std::size_t ky = 0; ky < s.kernel; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(y * s.stride + ky) -
                  static_cast<std::ptrdiff_t>(s.padding);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) continue;
              for (std::size_t kx = 0; kx < s.kernel; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(x * s.stride + kx) -
                    static_cast<std::ptrdiff_t>(s.padding);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(s.in_w)) continue;
                gw_c[ky * s.kernel + kx] +=
                    g * in_c[iy * static_cast<std::ptrdiff_t>(s.in_w) + ix];
              }
            }
          }
        }
      }
    }
  }
}

void maxpool_forward(const Pool2dShape& s, const Tensor& input, Tensor& output,
                     std::vector<std::size_t>& argmax) {
  HACCS_CHECK_MSG(s.window > 0 && s.in_h >= s.window && s.in_w >= s.window,
                  "maxpool: bad window");
  const std::size_t oh = s.out_h(), ow = s.out_w();
  if (output.size() != s.batch * s.channels * oh * ow) {
    throw std::invalid_argument("maxpool: output shape mismatch");
  }
  argmax.resize(output.size());
  const float* in = input.raw();
  float* out = output.raw();
  const std::size_t in_plane = s.in_h * s.in_w;
  const std::size_t out_plane = oh * ow;

  for (std::size_t n = 0; n < s.batch; ++n) {
    for (std::size_t c = 0; c < s.channels; ++c) {
      const std::size_t in_base = (n * s.channels + c) * in_plane;
      const std::size_t out_base = (n * s.channels + c) * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t wy = 0; wy < s.window; ++wy) {
            for (std::size_t wx = 0; wx < s.window; ++wx) {
              const std::size_t idx = in_base +
                                      (y * s.window + wy) * s.in_w +
                                      (x * s.window + wx);
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          }
          out[out_base + y * ow + x] = best;
          argmax[out_base + y * ow + x] = best_idx;
        }
      }
    }
  }
}

void maxpool_backward(const Pool2dShape& s, const Tensor& grad_output,
                      const std::vector<std::size_t>& argmax,
                      Tensor& grad_input) {
  if (grad_output.size() != argmax.size()) {
    throw std::invalid_argument("maxpool_backward: argmax size mismatch");
  }
  (void)s;
  grad_input.fill(0.0f);
  const float* go = grad_output.raw();
  float* gi = grad_input.raw();
  for (std::size_t i = 0; i < argmax.size(); ++i) gi[argmax[i]] += go[i];
}

}  // namespace haccs::ops
