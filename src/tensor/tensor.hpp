// Dense row-major float tensors.
//
// A deliberately small tensor type: owning, contiguous, row-major storage of
// float32 with a dynamic shape. It supports the operations the neural-network
// library needs (GEMM, convolution via tensor/ops.hpp, elementwise maps) and
// nothing more. Interfaces take std::span per Core Guidelines R.14.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace haccs {

class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Every extent must be > 0.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Tensor with explicit contents; `values.size()` must equal the product
  /// of the extents.
  Tensor(std::vector<std::size_t> shape, std::vector<float> values);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t extent(std::size_t dim) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Flat element access.
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D access: requires rank() == 2.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// 4-D access (N, C, H, W): requires rank() == 4.
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Reinterprets the flat data with a new shape of identical total size.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float value);

  /// Sum / mean / min / max over all elements (0 for sum of empty).
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;

  /// Squared L2 norm of all elements.
  double squared_norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// "[2, 3, 4]"-style shape string for error messages.
  std::string shape_string() const;

  // ---- in-place arithmetic (shapes must match exactly) ----
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  /// this += scalar * other (axpy).
  void add_scaled(const Tensor& other, float scalar);

 private:
  void check_rank(std::size_t expected) const;

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace haccs
