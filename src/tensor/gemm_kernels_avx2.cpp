// Blocked GEMM backend compiled with -mavx2 -mfma (see tensor/CMakeLists).
// Only ever called after a runtime __builtin_cpu_supports check in ops.cpp,
// so building it into a binary that runs on older CPUs is safe.
#define HACCS_KERNEL_NAMESPACE avx2
#include "src/tensor/gemm_kernels.inc"
