// Branch-free elementwise kernels over contiguous spans.
//
// These are the small vector loops behind Tensor arithmetic, the SGD
// optimizer, and FedAvg accumulation. Each helper takes raw contiguous
// ranges, has no branch in the inner loop, and is written so -O3
// auto-vectorizes it on whatever ISA the translation unit targets. Keeping
// them in one header means every caller gets the same (inlined) codegen
// instead of re-rolling slightly different loops.
#pragma once

#include <cstddef>
#include <span>

namespace haccs::vec {

/// dst[i] += a * src[i].
inline void axpy(std::span<float> dst, std::span<const float> src, float a) {
  float* __restrict d = dst.data();
  const float* __restrict s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] += a * s[i];
}

/// dst[i] += src[i].
inline void add(std::span<float> dst, std::span<const float> src) {
  float* __restrict d = dst.data();
  const float* __restrict s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] += s[i];
}

/// dst[i] -= src[i].
inline void sub(std::span<float> dst, std::span<const float> src) {
  float* __restrict d = dst.data();
  const float* __restrict s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] -= s[i];
}

/// dst[i] *= a.
inline void scale(std::span<float> dst, float a) {
  float* __restrict d = dst.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] *= a;
}

/// dst[i] = a[i] - b[i] (writes a fresh delta, e.g. update - global).
inline void diff(std::span<float> dst, std::span<const float> a,
                 std::span<const float> b) {
  float* __restrict d = dst.data();
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] = pa[i] - pb[i];
}

/// acc[i] += w * src[i], widening to double — the FedAvg accumulation loop.
inline void accumulate_scaled(std::span<double> acc,
                              std::span<const float> src, double w) {
  double* __restrict d = acc.data();
  const float* __restrict s = src.data();
  const std::size_t n = acc.size();
  for (std::size_t i = 0; i < n; ++i) d[i] += w * static_cast<double>(s[i]);
}

/// Sum of x[i]^2 in double precision.
inline double squared_norm(std::span<const float> x) {
  const float* __restrict s = x.data();
  const std::size_t n = x.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(s[i]) * static_cast<double>(s[i]);
  }
  return acc;
}

/// Plain SGD step: p[i] -= lr * (g[i] + wd * p[i]).
inline void sgd_step(std::span<float> p, std::span<const float> g, float lr,
                     float wd) {
  float* __restrict pp = p.data();
  const float* __restrict pg = g.data();
  const std::size_t n = p.size();
  for (std::size_t i = 0; i < n; ++i) pp[i] -= lr * (pg[i] + wd * pp[i]);
}

/// Momentum SGD step: v = mu*v + g + wd*p; p -= lr*v.
inline void sgd_momentum_step(std::span<float> p, std::span<const float> g,
                              std::span<float> v, float lr, float mu,
                              float wd) {
  float* __restrict pp = p.data();
  const float* __restrict pg = g.data();
  float* __restrict pv = v.data();
  const std::size_t n = p.size();
  for (std::size_t i = 0; i < n; ++i) {
    pv[i] = mu * pv[i] + pg[i] + wd * pp[i];
    pp[i] -= lr * pv[i];
  }
}

/// dst[i] = max(src[i], 0) — ReLU forward, branch-free.
inline void relu(std::span<float> dst, std::span<const float> src) {
  float* __restrict d = dst.data();
  const float* __restrict s = src.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] = s[i] > 0.0f ? s[i] : 0.0f;
}

/// dst[i] = in[i] > 0 ? dst[i] : 0 — ReLU backward mask, branch-free select.
inline void relu_mask(std::span<float> dst, std::span<const float> in) {
  float* __restrict d = dst.data();
  const float* __restrict s = in.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] = s[i] > 0.0f ? d[i] : 0.0f;
}

}  // namespace haccs::vec
