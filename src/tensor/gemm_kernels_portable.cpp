// Blocked GEMM backend compiled with the build's default target flags.
// Always present; the dispatcher falls back to it when the CPU lacks the
// features the specialized backends need (or HACCS_PORTABLE_KERNELS is set).
#define HACCS_KERNEL_NAMESPACE portable
#include "src/tensor/gemm_kernels.inc"
