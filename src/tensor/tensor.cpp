#include "src/tensor/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs {

namespace {
std::size_t shape_product(const std::vector<std::size_t>& shape) {
  std::size_t total = 1;
  for (std::size_t e : shape) {
    if (e == 0) throw std::invalid_argument("Tensor: zero extent");
    total *= e;
  }
  return total;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_product(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != shape_product(shape_)) {
    throw std::invalid_argument("Tensor: values size does not match shape " +
                                shape_string());
  }
}

std::size_t Tensor::extent(std::size_t dim) const {
  if (dim >= shape_.size()) {
    throw std::out_of_range("Tensor::extent: dim out of range");
  }
  return shape_[dim];
}

void Tensor::check_rank(std::size_t expected) const {
  if (shape_.size() != expected) {
    throw std::logic_error("Tensor: expected rank " + std::to_string(expected) +
                           ", have shape " + shape_string());
  }
}

float& Tensor::at(std::size_t r, std::size_t c) {
  check_rank(2);
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  check_rank(2);
  return data_[r * shape_[1] + c];
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  check_rank(4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  check_rank(4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_product(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: size mismatch");
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::mean() const {
  if (data_.empty()) throw std::logic_error("Tensor::mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::squared_norm() const {
  return vec::squared_norm(std::span<const float>(data_));
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor& Tensor::operator+=(const Tensor& other) {
  HACCS_CHECK_MSG(same_shape(other), "Tensor += shape mismatch");
  vec::add(data_, other.data_);
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  HACCS_CHECK_MSG(same_shape(other), "Tensor -= shape mismatch");
  vec::sub(data_, other.data_);
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  vec::scale(data_, scalar);
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scalar) {
  HACCS_CHECK_MSG(same_shape(other), "Tensor::add_scaled shape mismatch");
  vec::axpy(data_, other.data_, scalar);
}

}  // namespace haccs
