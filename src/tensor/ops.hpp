// Tensor kernels: GEMM family, 2-D convolution, and max-pooling.
//
// These are the compute primitives behind the neural-network layers. GEMM is
// cache-blocked and parallelized over row blocks with parallel_for; the
// convolution kernels are direct loops (the models in this repository use
// small 5x5 kernels on small images, where im2col's packing overhead does not
// pay off on a single core).
#pragma once

#include <cstddef>

#include "src/tensor/tensor.hpp"

namespace haccs::ops {

/// C = A(m,k) * B(k,n). Shapes are validated; C is resized by the caller
/// passing a correctly-shaped tensor. `accumulate == false` overwrites C.
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// C = A(m,k) * B(n,k)^T -> (m,n).
void gemm_bt(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

/// C = A(k,m)^T * B(k,n) -> (m,n).
void gemm_at(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

struct Conv2dShape {
  std::size_t batch;
  std::size_t in_channels;
  std::size_t in_h;
  std::size_t in_w;
  std::size_t out_channels;
  std::size_t kernel;   // square kernels only
  std::size_t stride;
  std::size_t padding;

  std::size_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
};

/// Forward convolution. input: (N, Cin, H, W); weight: (Cout, Cin, K, K);
/// bias: (Cout); output: (N, Cout, Hout, Wout) — allocated by caller.
/// Dispatches to the im2col+GEMM path when the patch matrix is large enough
/// to amortize the packing, and to direct loops otherwise.
void conv2d_forward(const Conv2dShape& s, const Tensor& input,
                    const Tensor& weight, const Tensor& bias, Tensor& output);

/// Direct-loop forward convolution (always available; reference semantics).
void conv2d_forward_direct(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output);

/// im2col + GEMM forward convolution. Produces bit-different but numerically
/// equivalent results to the direct path (same multiply/add tree per output
/// up to float reassociation by GEMM row order; in practice identical for
/// the accumulation orders used here).
void conv2d_forward_im2col(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output);

/// Unrolls one sample's padded patches into a (Cin*K*K, Hout*Wout) matrix.
/// `sample` points at the (Cin, H, W) block; `columns` must be presized.
void im2col(const Conv2dShape& s, const float* sample, float* columns);

/// Gradient w.r.t. input. grad_output: (N, Cout, Hout, Wout) ->
/// grad_input: (N, Cin, H, W), overwritten.
void conv2d_backward_input(const Conv2dShape& s, const Tensor& grad_output,
                           const Tensor& weight, Tensor& grad_input);

/// Gradients w.r.t. weight and bias, *accumulated* into grad_weight /
/// grad_bias (caller zeroes them at the start of a batch).
void conv2d_backward_params(const Conv2dShape& s, const Tensor& input,
                            const Tensor& grad_output, Tensor& grad_weight,
                            Tensor& grad_bias);

struct Pool2dShape {
  std::size_t batch;
  std::size_t channels;
  std::size_t in_h;
  std::size_t in_w;
  std::size_t window;  // square window, stride == window (non-overlapping)

  std::size_t out_h() const { return in_h / window; }
  std::size_t out_w() const { return in_w / window; }
};

/// Max pooling; `argmax` records the flat input index of each maximum for
/// the backward pass. output/argmax: (N, C, Hout, Wout)-sized.
void maxpool_forward(const Pool2dShape& s, const Tensor& input, Tensor& output,
                     std::vector<std::size_t>& argmax);

/// Scatter grad_output back through the recorded argmax indices;
/// grad_input is overwritten.
void maxpool_backward(const Pool2dShape& s, const Tensor& grad_output,
                      const std::vector<std::size_t>& argmax,
                      Tensor& grad_input);

}  // namespace haccs::ops
