// Tensor kernels: GEMM family, 2-D convolution, and max-pooling.
//
// These are the compute primitives behind the neural-network layers. The
// GEMM family (NN / NT / TN) runs through one cache-blocked, packing,
// register-tiled kernel (MC/KC/NC tiling; see DESIGN.md §"Compute kernels")
// parallelized over row panels with parallel_for, with an AVX2+FMA
// micro-kernel selected at runtime on CPUs that support it. Convolutions use
// the im2col/col2im + GEMM formulation in both directions once the patch
// matrix is large enough to amortize packing, and direct loops below that.
// The straightforward seed implementations are retained as `*_reference` /
// `*_direct` kernels: they define the semantics the optimized paths are
// property-tested against, and `set_kernel_backend(KernelBackend::kReference)`
// routes every dispatching entry point through them at runtime.
#pragma once

#include <cstddef>

#include "src/tensor/tensor.hpp"

namespace haccs::ops {

/// Which implementations the dispatching kernels (gemm / conv2d_*) use.
/// kOptimized (default) picks the blocked/packed paths; kReference forces the
/// retained seed kernels everywhere — for equivalence tests and debugging.
enum class KernelBackend { kOptimized, kReference };

/// Process-wide backend switch (atomic; intended for tests, not hot paths).
/// Initial value honors HACCS_KERNEL_BACKEND=reference; the environment
/// variable HACCS_PORTABLE_KERNELS additionally forces the non-AVX2 blocked
/// path within kOptimized.
void set_kernel_backend(KernelBackend backend);
KernelBackend kernel_backend();

/// C = A(m,k) * B(k,n). Shapes are validated; C is resized by the caller
/// passing a correctly-shaped tensor. `accumulate == false` overwrites C.
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// C = A(m,k) * B(n,k)^T -> (m,n).
void gemm_bt(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

/// C = A(k,m)^T * B(k,n) -> (m,n).
void gemm_at(const Tensor& a, const Tensor& b, Tensor& c,
             bool accumulate = false);

/// Reference GEMM kernels: the plain loop nests the blocked implementations
/// are tested against. Numerically these accumulate in a different order
/// than the blocked kernels, so agreement is tolerance-bounded, not bitwise.
void gemm_reference(const Tensor& a, const Tensor& b, Tensor& c,
                    bool accumulate = false);
void gemm_bt_reference(const Tensor& a, const Tensor& b, Tensor& c,
                       bool accumulate = false);
void gemm_at_reference(const Tensor& a, const Tensor& b, Tensor& c,
                       bool accumulate = false);

struct Conv2dShape {
  std::size_t batch;
  std::size_t in_channels;
  std::size_t in_h;
  std::size_t in_w;
  std::size_t out_channels;
  std::size_t kernel;   // square kernels only
  std::size_t stride;
  std::size_t padding;

  std::size_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
};

/// Forward convolution. input: (N, Cin, H, W); weight: (Cout, Cin, K, K);
/// bias: (Cout); output: (N, Cout, Hout, Wout) — allocated by caller.
/// Dispatches to the im2col+GEMM path when the patch matrix is large enough
/// to amortize the packing, and to direct loops otherwise.
void conv2d_forward(const Conv2dShape& s, const Tensor& input,
                    const Tensor& weight, const Tensor& bias, Tensor& output);

/// Direct-loop forward convolution (always available; reference semantics).
void conv2d_forward_direct(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output);

/// im2col + GEMM forward convolution. Produces bit-different but numerically
/// equivalent results to the direct path (same multiply/add tree per output
/// up to float reassociation by GEMM accumulation order).
void conv2d_forward_im2col(const Conv2dShape& s, const Tensor& input,
                           const Tensor& weight, const Tensor& bias,
                           Tensor& output);

/// Unrolls one sample's padded patches into a (Cin*K*K, Hout*Wout) matrix.
/// `sample` points at the (Cin, H, W) block; `columns` must be presized.
void im2col(const Conv2dShape& s, const float* sample, float* columns);

/// Scatter-adds a (Cin*K*K, Hout*Wout) column matrix back onto one sample's
/// (Cin, H, W) gradient block (the adjoint of im2col). `sample_grad` must be
/// zeroed by the caller before the first accumulation.
void col2im(const Conv2dShape& s, const float* columns, float* sample_grad);

/// Gradient w.r.t. input. grad_output: (N, Cout, Hout, Wout) ->
/// grad_input: (N, Cin, H, W), overwritten. Dispatches between the
/// col2im+GEMM path and the direct loops like the forward pass.
void conv2d_backward_input(const Conv2dShape& s, const Tensor& grad_output,
                           const Tensor& weight, Tensor& grad_input);

/// Direct-loop input gradient (reference semantics).
void conv2d_backward_input_direct(const Conv2dShape& s,
                                  const Tensor& grad_output,
                                  const Tensor& weight, Tensor& grad_input);

/// col2im + GEMM input gradient: dcols = W^T * dY per sample, then col2im.
void conv2d_backward_input_im2col(const Conv2dShape& s,
                                  const Tensor& grad_output,
                                  const Tensor& weight, Tensor& grad_input);

/// Gradients w.r.t. weight and bias, *accumulated* into grad_weight /
/// grad_bias (caller zeroes them at the start of a batch). Dispatches
/// between the im2col+GEMM path and the direct loops.
void conv2d_backward_params(const Conv2dShape& s, const Tensor& input,
                            const Tensor& grad_output, Tensor& grad_weight,
                            Tensor& grad_bias);

/// Direct-loop parameter gradients (reference semantics).
void conv2d_backward_params_direct(const Conv2dShape& s, const Tensor& input,
                                   const Tensor& grad_output,
                                   Tensor& grad_weight, Tensor& grad_bias);

/// im2col + GEMM parameter gradients: dW += dY * cols^T per sample.
void conv2d_backward_params_im2col(const Conv2dShape& s, const Tensor& input,
                                   const Tensor& grad_output,
                                   Tensor& grad_weight, Tensor& grad_bias);

struct Pool2dShape {
  std::size_t batch;
  std::size_t channels;
  std::size_t in_h;
  std::size_t in_w;
  std::size_t window;  // square window, stride == window (non-overlapping)

  std::size_t out_h() const { return in_h / window; }
  std::size_t out_w() const { return in_w / window; }
};

/// Max pooling; `argmax` records the flat input index of each maximum for
/// the backward pass. output/argmax: (N, C, Hout, Wout)-sized.
void maxpool_forward(const Pool2dShape& s, const Tensor& input, Tensor& output,
                     std::vector<std::size_t>& argmax);

/// Max pooling without recording argmax — the inference path.
void maxpool_forward_infer(const Pool2dShape& s, const Tensor& input,
                           Tensor& output);

/// Scatter grad_output back through the recorded argmax indices;
/// grad_input is overwritten.
void maxpool_backward(const Pool2dShape& s, const Tensor& grad_output,
                      const std::vector<std::size_t>& argmax,
                      Tensor& grad_input);

}  // namespace haccs::ops
