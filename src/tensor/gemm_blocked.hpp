// Internal interface to the cache-blocked GEMM backends.
//
// The blocked kernel is compiled once per ISA level (portable baseline and,
// on x86-64, AVX2+FMA) from the same source (gemm_kernels.inc); ops.cpp picks
// one implementation per process at startup via CPUID. Both backends compute
//
//   C(m,n) (+)= A'(m,k) * B'(k,n)
//
// where A' and B' are strided views: A'(i,kk) = a[i*a_is + kk*a_ks] and
// B'(kk,j) = b[kk*b_ks + j*b_js]. The three public GEMM variants (NN, NT, TN)
// differ only in those strides, so they share one driver and one packed
// micro-kernel.
#pragma once

#include <cstddef>

namespace haccs::ops::detail {

using BlockedGemmFn = void (*)(std::size_t m, std::size_t n, std::size_t k,
                               const float* a, std::size_t a_is,
                               std::size_t a_ks, const float* b,
                               std::size_t b_ks, std::size_t b_js, float* c,
                               bool accumulate);

namespace portable {
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t a_is, std::size_t a_ks, const float* b,
                  std::size_t b_ks, std::size_t b_js, float* c,
                  bool accumulate);
}  // namespace portable

#if defined(HACCS_HAVE_AVX2_KERNELS)
namespace avx2 {
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t a_is, std::size_t a_ks, const float* b,
                  std::size_t b_ks, std::size_t b_js, float* c,
                  bool accumulate);
}  // namespace avx2
#endif

}  // namespace haccs::ops::detail
