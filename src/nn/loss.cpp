#include "src/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace haccs::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected (N, classes)");
  }
  const std::size_t n = logits.extent(0), c = logits.extent(1);
  Tensor probs({n, c});
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.raw() + i * c;
    float* out = probs.raw() + i * c;
    const float m = *std::max_element(row, row + c);
    double total = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      out[j] = std::exp(row[j] - m);
      total += out[j];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::size_t j = 0; j < c; ++j) out[j] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int64_t> labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: expected (N, classes)");
  }
  const std::size_t n = logits.extent(0), c = logits.extent(1);
  if (labels.size() != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  LossResult result;
  result.grad_logits = Tensor({n, c});
  double loss_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t label = labels[i];
    if (label < 0 || static_cast<std::size_t>(label) >= c) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    const float* row = logits.raw() + i * c;
    float* grad = result.grad_logits.raw() + i * c;
    const float m = *std::max_element(row, row + c);
    double total = 0.0;
    for (std::size_t j = 0; j < c; ++j) total += std::exp(row[j] - m);
    const double log_total = std::log(total);
    loss_total += -(row[label] - m - log_total);

    const std::size_t argmax =
        static_cast<std::size_t>(std::max_element(row, row + c) - row);
    if (argmax == static_cast<std::size_t>(label)) ++result.correct;

    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t j = 0; j < c; ++j) {
      const float p = static_cast<float>(std::exp(row[j] - m) / total);
      grad[j] = (p - (j == static_cast<std::size_t>(label) ? 1.0f : 0.0f)) * inv_n;
    }
  }
  result.loss = loss_total / static_cast<double>(n);
  return result;
}

}  // namespace haccs::nn
