#include "src/nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "src/net/frame.hpp"
#include "src/net/wire.hpp"

namespace haccs::nn {

namespace {
// Pre-frame checkpoint format (v1): "HCCS", u32 version, u64 count, floats.
// Still readable; new checkpoints are net frames (see save_parameters).
constexpr char kLegacyMagic[4] = {'H', 'C', 'C', 'S'};
constexpr std::uint32_t kLegacyVersion = 1;

std::vector<float> load_legacy(std::ifstream& in, const std::string& path) {
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || std::memcmp(magic, kLegacyMagic, sizeof(kLegacyMagic)) != 0) {
    throw std::runtime_error("load_parameters: not a HACCS checkpoint: " +
                             path);
  }
  if (version != kLegacyVersion) {
    throw std::runtime_error("load_parameters: unsupported version " +
                             std::to_string(version));
  }
  // Sanity bound: reject absurd counts before allocating.
  if (count > (1ULL << 32)) {
    throw std::runtime_error("load_parameters: implausible parameter count");
  }
  std::vector<float> params(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!in || in.gcount() != static_cast<std::streamsize>(params.size() *
                                                         sizeof(float))) {
    throw std::runtime_error("load_parameters: truncated file: " + path);
  }
  return params;
}
}  // namespace

void save_parameters(const Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  net::WireWriter w;
  w.f32_array(model.get_parameters());
  const auto encoded =
      net::encode_frame(net::Frame{net::MessageType::Checkpoint, w.take()});
  out.write(reinterpret_cast<const char*>(encoded.data()),
            static_cast<std::streamsize>(encoded.size()));
  if (!out) throw std::runtime_error("save_parameters: write failed: " + path);
}

std::vector<float> load_parameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  // Peek the magic to route between the frame format and legacy v1 files.
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in) {
    throw std::runtime_error("load_parameters: not a HACCS checkpoint: " +
                             path);
  }
  in.seekg(0);
  if (std::memcmp(magic, kLegacyMagic, sizeof(kLegacyMagic)) == 0) {
    return load_legacy(in, path);
  }

  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  net::Frame frame;
  switch (net::decode_frame(bytes, &frame)) {
    case net::FrameStatus::Ok:
      break;
    case net::FrameStatus::NeedMore:
      throw std::runtime_error("load_parameters: truncated checkpoint: " +
                               path);
    case net::FrameStatus::BadChecksum:
      throw std::runtime_error(
          "load_parameters: checkpoint CRC mismatch (corrupt file): " + path);
    default:
      throw std::runtime_error("load_parameters: not a HACCS checkpoint: " +
                               path);
  }
  if (frame.type != net::MessageType::Checkpoint) {
    throw std::runtime_error("load_parameters: frame is not a checkpoint: " +
                             path);
  }
  try {
    net::WireReader r(frame.payload);
    auto params = r.f32_array();
    r.expect_exhausted();
    return params;
  } catch (const net::WireError& e) {
    throw std::runtime_error(std::string("load_parameters: malformed "
                                         "checkpoint payload: ") +
                             e.what());
  }
}

void load_into(Sequential& model, const std::string& path) {
  model.set_parameters(load_parameters(path));
}

}  // namespace haccs::nn
