#include "src/nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace haccs::nn {

namespace {
constexpr char kMagic[4] = {'H', 'C', 'C', 'S'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_parameters(const Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  const auto params = model.get_parameters();
  const auto count = static_cast<std::uint64_t>(params.size());
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!out) throw std::runtime_error("save_parameters: write failed: " + path);
}

std::vector<float> load_parameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_parameters: not a HACCS checkpoint: " + path);
  }
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version " +
                             std::to_string(version));
  }
  // Sanity bound: reject absurd counts before allocating.
  if (count > (1ULL << 32)) {
    throw std::runtime_error("load_parameters: implausible parameter count");
  }
  std::vector<float> params(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!in || in.gcount() !=
                 static_cast<std::streamsize>(params.size() * sizeof(float))) {
    throw std::runtime_error("load_parameters: truncated file: " + path);
  }
  return params;
}

void load_into(Sequential& model, const std::string& path) {
  model.set_parameters(load_parameters(path));
}

}  // namespace haccs::nn
