// Softmax cross-entropy loss with fused gradient.
//
// Computing softmax and cross-entropy together is both faster and numerically
// safer (log-sum-exp with max subtraction) than separate layers, and the
// combined gradient is simply (softmax - onehot) / N.
#pragma once

#include <cstdint>
#include <span>

#include "src/tensor/tensor.hpp"

namespace haccs::nn {

struct LossResult {
  double loss = 0.0;        ///< mean cross-entropy over the batch
  Tensor grad_logits;       ///< d(loss)/d(logits), shape (N, classes)
  std::size_t correct = 0;  ///< argmax matches label
};

/// logits: (N, classes); labels[i] in [0, classes). Throws on shape or label
/// range violations.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int64_t> labels);

/// Softmax probabilities per row (for inspection / calibration tests).
Tensor softmax(const Tensor& logits);

}  // namespace haccs::nn
