// Stochastic gradient descent with optional momentum and weight decay —
// the optimizer used by local client training in federated averaging.
#pragma once

#include <vector>

#include "src/nn/model.hpp"

namespace haccs::nn {

struct SgdConfig {
  double learning_rate = 0.01;
  double momentum = 0.0;      ///< classical (heavy-ball) momentum
  double weight_decay = 0.0;  ///< L2 regularization coefficient
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdConfig config);

  /// Applies one update step using the gradients currently accumulated in
  /// the model. Momentum buffers are lazily sized on first use and reused
  /// across steps; reset() clears them (used when a client receives fresh
  /// global weights).
  void step(Sequential& model);

  void reset();

  const SgdConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }

 private:
  SgdConfig config_;
  std::vector<std::vector<float>> velocity_;  // one buffer per param tensor
};

}  // namespace haccs::nn
