// Model checkpointing: binary save/load of flat parameter vectors.
//
// A checkpoint is one net wire frame (frame.hpp): the "HNET" header with
// type MessageType::Checkpoint and a CRC-32 over the payload, whose body is
// a length-prefixed float32 array. Sharing the frame format with the
// transport layer means checkpoints get the same integrity checking as
// network traffic — truncation, header damage, and payload corruption each
// fail loudly at load with a distinct message. Files written by the
// pre-frame "HCCS" v1 format are still readable.
//
// The architecture itself is code (model factories are deterministic in
// their seed), so checkpoints store only the parameters — the caller pairs
// a checkpoint with the factory that produced the model, and mismatched
// sizes fail loudly at load/set time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/model.hpp"

namespace haccs::nn {

/// Writes the model's parameters to `path`. Throws std::runtime_error on
/// I/O failure.
void save_parameters(const Sequential& model, const std::string& path);

/// Reads a parameter vector written by save_parameters. Throws
/// std::runtime_error on I/O failure or a malformed file.
std::vector<float> load_parameters(const std::string& path);

/// Convenience: load + set in one step (size-checked by set_parameters).
void load_into(Sequential& model, const std::string& path);

}  // namespace haccs::nn
