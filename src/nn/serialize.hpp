// Model checkpointing: binary save/load of flat parameter vectors.
//
// Format (little-endian): magic "HCCS", u32 version, u64 count, then
// `count` IEEE-754 float32 values. The architecture itself is code (model
// factories are deterministic in their seed), so checkpoints store only the
// parameters — the caller pairs a checkpoint with the factory that produced
// the model, and mismatched sizes fail loudly at load/set time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/model.hpp"

namespace haccs::nn {

/// Writes the model's parameters to `path`. Throws std::runtime_error on
/// I/O failure.
void save_parameters(const Sequential& model, const std::string& path);

/// Reads a parameter vector written by save_parameters. Throws
/// std::runtime_error on I/O failure or a malformed file.
std::vector<float> load_parameters(const std::string& path);

/// Convenience: load + set in one step (size-checked by set_parameters).
void load_into(Sequential& model, const std::string& path);

}  // namespace haccs::nn
