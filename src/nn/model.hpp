// Sequential model container, flat parameter (de)serialization for federated
// averaging, and factories for the paper's model architectures.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/layer.hpp"

namespace haccs::nn {

/// A stack of layers applied in order. Owns its layers.
class Sequential {
 public:
  Sequential() = default;

  /// Non-copyable (layers hold training caches); movable.
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& input);
  /// Backpropagates through all layers, accumulating parameter gradients.
  /// Returns the gradient with respect to the model input.
  Tensor backward(const Tensor& grad_output);

  /// Inference-only forward pass: no layer state is touched, so a shared
  /// model can be evaluated from multiple threads concurrently. Dropout is
  /// always inactive on this path.
  Tensor infer(const Tensor& input) const;

  void zero_grad();
  void set_training(bool training);

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Total number of scalar parameters.
  std::size_t parameter_count() const;

  /// Copies all parameters into one flat vector (layer order, tensor order).
  std::vector<float> get_parameters() const;

  /// Restores parameters from a flat vector; size must match exactly.
  void set_parameters(std::span<const float> flat);

  /// Copies all accumulated gradients into one flat vector.
  std::vector<float> get_gradients() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Multi-layer perceptron: input_dim -> hidden... -> classes, ReLU between.
Sequential make_mlp(std::size_t input_dim,
                    const std::vector<std::size_t>& hidden,
                    std::size_t classes, Rng& rng);

/// LeNet-style CNN per the paper's evaluation (§V-A): two 5x5 conv + pool
/// stages followed by two dense layers. Works for any (channels, h, w) whose
/// spatial extent survives two 2x2 pools after 5x5 convs with padding 2.
Sequential make_lenet(std::size_t channels, std::size_t h, std::size_t w,
                      std::size_t classes, Rng& rng);

/// A small CNN (one conv/pool stage) for fast experiment sweeps on one core.
Sequential make_cnn_mini(std::size_t channels, std::size_t h, std::size_t w,
                         std::size_t classes, Rng& rng);

}  // namespace haccs::nn
