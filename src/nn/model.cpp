#include "src/nn/model.hpp"

#include <stdexcept>

#include "src/common/error.hpp"

namespace haccs::nn {

void Sequential::add(std::unique_ptr<Layer> layer) {
  HACCS_CHECK_MSG(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::infer(const Tensor& input) const {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->infer(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

void Sequential::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

std::size_t Sequential::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).parameters()) {
      total += p->size();
    }
  }
  return total;
}

std::vector<float> Sequential::get_parameters() const {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).parameters()) {
      auto d = p->data();
      flat.insert(flat.end(), d.begin(), d.end());
    }
  }
  return flat;
}

void Sequential::set_parameters(std::span<const float> flat) {
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) {
      if (offset + p->size() > flat.size()) {
        throw std::invalid_argument("set_parameters: flat vector too short");
      }
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                flat.begin() + static_cast<std::ptrdiff_t>(offset + p->size()),
                p->data().begin());
      offset += p->size();
    }
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("set_parameters: flat vector too long");
  }
}

std::vector<float> Sequential::get_gradients() const {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (const auto& layer : layers_) {
    for (Tensor* g : const_cast<Layer&>(*layer).gradients()) {
      auto d = g->data();
      flat.insert(flat.end(), d.begin(), d.end());
    }
  }
  return flat;
}

Sequential make_mlp(std::size_t input_dim,
                    const std::vector<std::size_t>& hidden,
                    std::size_t classes, Rng& rng) {
  Sequential model;
  std::size_t prev = input_dim;
  for (std::size_t width : hidden) {
    model.add(std::make_unique<Dense>(prev, width, rng));
    model.add(std::make_unique<ReLU>());
    prev = width;
  }
  model.add(std::make_unique<Dense>(prev, classes, rng));
  return model;
}

Sequential make_lenet(std::size_t channels, std::size_t h, std::size_t w,
                      std::size_t classes, Rng& rng) {
  // conv5x5(pad 2) keeps spatial size; each pool halves it.
  if (h / 4 == 0 || w / 4 == 0) {
    throw std::invalid_argument("make_lenet: input too small for two pools");
  }
  Sequential model;
  model.add(std::make_unique<Conv2d>(channels, 6, 5, 1, 2, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Conv2d>(6, 16, 5, 1, 2, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  const std::size_t flat = 16 * (h / 4) * (w / 4);
  model.add(std::make_unique<Dense>(flat, 120, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(120, classes, rng));
  return model;
}

Sequential make_cnn_mini(std::size_t channels, std::size_t h, std::size_t w,
                         std::size_t classes, Rng& rng) {
  if (h / 2 == 0 || w / 2 == 0) {
    throw std::invalid_argument("make_cnn_mini: input too small");
  }
  Sequential model;
  model.add(std::make_unique<Conv2d>(channels, 4, 3, 1, 1, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  const std::size_t flat = 4 * (h / 2) * (w / 2);
  model.add(std::make_unique<Dense>(flat, 32, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(32, classes, rng));
  return model;
}

}  // namespace haccs::nn
