#include "src/nn/layer.hpp"

#include <cmath>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs::nn {

void Layer::zero_grad() {
  for (Tensor* g : gradients()) g->fill(0.0f);
}

namespace {
/// He-uniform initialization: U(-limit, limit) with limit = sqrt(6 / fan_in).
void he_uniform(Tensor& t, std::size_t fan_in, Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (float& v : t.data()) {
    v = static_cast<float>(rng.uniform(-limit, limit));
  }
}
}  // namespace

// ---------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Dense: zero feature count");
  }
  he_uniform(weight_, in_, rng);
}

Tensor Dense::forward(const Tensor& input) {
  if (input.rank() != 2 || input.extent(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected (N, " +
                                std::to_string(in_) + "), got " +
                                input.shape_string());
  }
  last_input_ = input;
  const std::size_t n = input.extent(0);
  Tensor out({n, out_});
  ops::gemm_bt(input, weight_, out);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) out.at(i, j) += bias_[j];
  }
  return out;
}

Tensor Dense::infer(const Tensor& input) const {
  if (input.rank() != 2 || input.extent(1) != in_) {
    throw std::invalid_argument("Dense::infer: expected (N, " +
                                std::to_string(in_) + "), got " +
                                input.shape_string());
  }
  const std::size_t n = input.extent(0);
  Tensor out({n, out_});
  ops::gemm_bt(input, weight_, out);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) out.at(i, j) += bias_[j];
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t n = last_input_.extent(0);
  if (grad_output.rank() != 2 || grad_output.extent(0) != n ||
      grad_output.extent(1) != out_) {
    throw std::invalid_argument("Dense::backward: grad shape mismatch");
  }
  // dW += dY^T X ; db += column sums of dY ; dX = dY W.
  ops::gemm_at(grad_output, last_input_, grad_weight_, /*accumulate=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < out_; ++j) {
      grad_bias_[j] += grad_output.at(i, j);
    }
  }
  Tensor grad_input({n, in_});
  ops::gemm(grad_output, weight_, grad_input);
  return grad_input;
}

// --------------------------------------------------------------- Conv2d ----

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  he_uniform(weight_, in_channels * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& input) {
  if (input.rank() != 4 || input.extent(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: bad input " +
                                input.shape_string());
  }
  last_input_ = input;
  last_shape_ = ops::Conv2dShape{input.extent(0), in_channels_,
                                 input.extent(2), input.extent(3),
                                 out_channels_, kernel_, stride_, padding_};
  Tensor out({last_shape_.batch, out_channels_, last_shape_.out_h(),
              last_shape_.out_w()});
  ops::conv2d_forward(last_shape_, input, weight_, bias_, out);
  return out;
}

Tensor Conv2d::infer(const Tensor& input) const {
  if (input.rank() != 4 || input.extent(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::infer: bad input " +
                                input.shape_string());
  }
  const ops::Conv2dShape shape{input.extent(0),  in_channels_,
                               input.extent(2),  input.extent(3),
                               out_channels_,    kernel_,
                               stride_,          padding_};
  Tensor out({shape.batch, out_channels_, shape.out_h(), shape.out_w()});
  ops::conv2d_forward(shape, input, weight_, bias_, out);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  ops::conv2d_backward_params(last_shape_, last_input_, grad_output,
                              grad_weight_, grad_bias_);
  Tensor grad_input({last_shape_.batch, in_channels_, last_shape_.in_h,
                     last_shape_.in_w});
  ops::conv2d_backward_input(last_shape_, grad_output, weight_, grad_input);
  return grad_input;
}

// ------------------------------------------------------------ MaxPool2d ----

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("MaxPool2d: zero window");
}

Tensor MaxPool2d::forward(const Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2d::forward: expected NCHW");
  }
  last_shape_ = ops::Pool2dShape{input.extent(0), input.extent(1),
                                 input.extent(2), input.extent(3), window_};
  Tensor out({last_shape_.batch, last_shape_.channels, last_shape_.out_h(),
              last_shape_.out_w()});
  ops::maxpool_forward(last_shape_, input, out, argmax_);
  return out;
}

Tensor MaxPool2d::infer(const Tensor& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2d::infer: expected NCHW");
  }
  const ops::Pool2dShape shape{input.extent(0), input.extent(1),
                               input.extent(2), input.extent(3), window_};
  Tensor out({shape.batch, shape.channels, shape.out_h(), shape.out_w()});
  ops::maxpool_forward_infer(shape, input, out);
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input({last_shape_.batch, last_shape_.channels, last_shape_.in_h,
                     last_shape_.in_w});
  ops::maxpool_backward(last_shape_, grad_output, argmax_, grad_input);
  return grad_input;
}

// ----------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& input) {
  last_input_ = input;
  Tensor out = input;
  vec::relu(out.data(), input.data());
  return out;
}

Tensor ReLU::infer(const Tensor& input) const {
  Tensor out = input;
  vec::relu(out.data(), input.data());
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  HACCS_CHECK_MSG(grad_output.same_shape(last_input_), "ReLU grad shape");
  Tensor grad_input = grad_output;
  vec::relu_mask(grad_input.data(), last_input_.data());
  return grad_input;
}

// -------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& input) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: expected rank >= 2");
  }
  last_shape_ = input.shape();
  const std::size_t n = input.extent(0);
  return input.reshaped({n, input.size() / n});
}

Tensor Flatten::infer(const Tensor& input) const {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: expected rank >= 2");
  }
  const std::size_t n = input.extent(0);
  return input.reshaped({n, input.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(last_shape_);
}

// -------------------------------------------------------------- Dropout ----

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.fork()) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || rate_ == 0.0) {
    mask_.clear();
    return input;
  }
  Tensor out = input;
  mask_.resize(input.size());
  const float scale = static_cast<float>(1.0 / (1.0 - rate_));
  auto o = out.data();
  for (std::size_t i = 0; i < o.size(); ++i) {
    mask_[i] = rng_.bernoulli(rate_) ? 0.0f : scale;
    o[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::infer(const Tensor& input) const {
  return input;  // inverted dropout is the identity at inference time
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // eval mode or rate 0
  HACCS_CHECK_MSG(grad_output.size() == mask_.size(), "Dropout grad shape");
  Tensor grad_input = grad_output;
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= mask_[i];
  return grad_input;
}

}  // namespace haccs::nn
