#include "src/nn/optimizer.hpp"

#include <stdexcept>

#include "src/common/error.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs::nn {

SgdOptimizer::SgdOptimizer(SgdConfig config) : config_(config) {
  if (config_.learning_rate <= 0.0) {
    throw std::invalid_argument("SgdOptimizer: learning rate must be > 0");
  }
  if (config_.momentum < 0.0 || config_.momentum >= 1.0) {
    throw std::invalid_argument("SgdOptimizer: momentum must be in [0, 1)");
  }
  if (config_.weight_decay < 0.0) {
    throw std::invalid_argument("SgdOptimizer: weight decay must be >= 0");
  }
}

void SgdOptimizer::step(Sequential& model) {
  const float lr = static_cast<float>(config_.learning_rate);
  const float mu = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);

  std::size_t buffer_index = 0;
  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    Layer& layer = model.layer(li);
    auto params = layer.parameters();
    auto grads = layer.gradients();
    HACCS_CHECK_MSG(params.size() == grads.size(),
                    "optimizer: param/grad arity mismatch");
    for (std::size_t pi = 0; pi < params.size(); ++pi, ++buffer_index) {
      Tensor& p = *params[pi];
      Tensor& g = *grads[pi];
      HACCS_CHECK_MSG(p.size() == g.size(), "optimizer: param/grad size");
      auto pd = p.data();
      auto gd = g.data();
      if (mu == 0.0f) {
        vec::sgd_step(pd, gd, lr, wd);
        continue;
      }
      if (velocity_.size() <= buffer_index) velocity_.resize(buffer_index + 1);
      auto& v = velocity_[buffer_index];
      if (v.size() != pd.size()) v.assign(pd.size(), 0.0f);
      vec::sgd_momentum_step(pd, gd, v, lr, mu, wd);
    }
  }
}

void SgdOptimizer::reset() { velocity_.clear(); }

}  // namespace haccs::nn
