// Neural-network layers with explicit forward/backward passes.
//
// Each layer owns its parameters and gradient accumulators. The backward
// contract: backward(grad_output) is called after forward(input) on the same
// batch, accumulates parameter gradients (so multiple micro-batches can be
// accumulated before an optimizer step), and returns the gradient w.r.t. the
// layer's input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/tensor.hpp"

namespace haccs::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only forward: caches nothing and does not mutate the layer,
  /// so a shared model can be evaluated from multiple threads concurrently.
  /// Stochastic train-time behavior (dropout) is disabled regardless of the
  /// training flag.
  virtual Tensor infer(const Tensor& input) const = 0;

  /// Parameter / gradient tensors (paired by index); empty for stateless
  /// layers. Non-owning pointers — the layer retains ownership.
  virtual std::vector<Tensor*> parameters() { return {}; }
  virtual std::vector<Tensor*> gradients() { return {}; }

  virtual void zero_grad();

  /// Dropout behaves differently in training vs. evaluation.
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  virtual std::string name() const = 0;

 protected:
  bool training_ = true;
};

/// Fully-connected layer: y = x W^T + b, x: (N, in), W: (out, in), b: (out).
class Dense : public Layer {
 public:
  /// He-uniform initialization scaled for the fan-in, seeded from `rng`.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) const override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weight_, &grad_bias_}; }
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  Tensor weight_, bias_, grad_weight_, grad_bias_;
  Tensor last_input_;
};

/// 2-D convolution over NCHW tensors with square kernels.
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t padding, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) const override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weight_, &grad_bias_}; }
  std::string name() const override { return "Conv2d"; }

 private:
  std::size_t in_channels_, out_channels_, kernel_, stride_, padding_;
  Tensor weight_, bias_, grad_weight_, grad_bias_;
  Tensor last_input_;
  ops::Conv2dShape last_shape_{};
};

/// Non-overlapping max pooling over NCHW tensors.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) const override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t window_;
  ops::Pool2dShape last_shape_{};
  std::vector<std::size_t> argmax_;
};

/// Elementwise rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) const override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor last_input_;
};

/// Collapses (N, C, H, W) -> (N, C*H*W); backward restores the shape.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) const override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> last_shape_;
};

/// Inverted dropout: active only in training mode. Seeded per-layer so the
/// mask stream is deterministic given the construction seed.
class Dropout : public Layer {
 public:
  Dropout(double rate, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) const override;
  std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  Rng rng_;
  std::vector<float> mask_;
};

}  // namespace haccs::nn
