#include "src/stats/summary.hpp"

#include <algorithm>
#include <stdexcept>

namespace haccs::stats {

std::string to_string(SummaryKind kind) {
  switch (kind) {
    case SummaryKind::Response: return "P(y)";
    case SummaryKind::Conditional: return "P(X|y)";
    case SummaryKind::Quantile: return "Q(X|y)";
  }
  throw std::invalid_argument("to_string: bad SummaryKind");
}

SummaryKind parse_summary_kind(const std::string& name) {
  if (name == "P(y)" || name == "response" || name == "py") {
    return SummaryKind::Response;
  }
  if (name == "P(X|y)" || name == "conditional" || name == "pxy") {
    return SummaryKind::Conditional;
  }
  if (name == "Q(X|y)" || name == "quantile" || name == "qxy") {
    return SummaryKind::Quantile;
  }
  throw std::invalid_argument("unknown summary kind: " + name);
}

ResponseSummary summarize_response(const data::Dataset& dataset) {
  ResponseSummary summary(dataset.num_classes());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    summary.label_counts.add_count(
        static_cast<std::size_t>(dataset.label(i)));
  }
  return summary;
}

ConditionalSummary summarize_conditional(
    const data::Dataset& dataset, const ConditionalSummaryConfig& config) {
  ConditionalSummary summary;
  summary.per_label.reserve(dataset.num_classes());
  for (std::size_t c = 0; c < dataset.num_classes(); ++c) {
    summary.per_label.emplace_back(config.bins, config.lo, config.hi);
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    auto& hist = summary.per_label[static_cast<std::size_t>(dataset.label(i))];
    for (float v : dataset.features(i)) {
      hist.observe(static_cast<double>(v));
    }
  }
  return summary;
}

QuantileSummary summarize_quantiles(const data::Dataset& dataset,
                                    const QuantileSummaryConfig& config) {
  if (config.num_quantiles == 0) {
    throw std::invalid_argument("summarize_quantiles: zero quantiles");
  }
  if (!(config.lo < config.hi)) {
    throw std::invalid_argument("summarize_quantiles: lo must be < hi");
  }
  QuantileSummary summary;
  summary.per_label.resize(dataset.num_classes());
  summary.mass.assign(dataset.num_classes(), 0.0);

  // Pool all feature values per label (clamped into range).
  std::vector<std::vector<double>> pooled(dataset.num_classes());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    auto& pool = pooled[static_cast<std::size_t>(dataset.label(i))];
    for (float v : dataset.features(i)) {
      pool.push_back(std::clamp(static_cast<double>(v), config.lo, config.hi));
    }
  }
  for (std::size_t c = 0; c < pooled.size(); ++c) {
    auto& pool = pooled[c];
    summary.mass[c] = static_cast<double>(pool.size());
    if (pool.empty()) continue;
    std::sort(pool.begin(), pool.end());
    auto& qs = summary.per_label[c];
    qs.reserve(config.num_quantiles);
    for (std::size_t q = 0; q < config.num_quantiles; ++q) {
      const double p = static_cast<double>(q + 1) /
                       static_cast<double>(config.num_quantiles + 1);
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(pool.size() - 1));
      qs.push_back(pool[idx]);
    }
  }
  return summary;
}

double quantile_distance(const QuantileSummary& a, const QuantileSummary& b,
                         const QuantileSummaryConfig& config) {
  if (a.per_label.size() != b.per_label.size()) {
    throw std::invalid_argument("quantile_distance: arity mismatch");
  }
  const double range = config.hi - config.lo;
  double grand_total = 0.0;
  for (std::size_t c = 0; c < a.mass.size(); ++c) {
    grand_total += std::max(a.mass[c], 0.0) + std::max(b.mass[c], 0.0);
  }
  if (grand_total <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t c = 0; c < a.per_label.size(); ++c) {
    const double ma = std::max(a.mass[c], 0.0);
    const double mb = std::max(b.mass[c], 0.0);
    const double weight = (ma + mb) / grand_total;
    if (weight <= 0.0) continue;
    double d;
    if (!a.per_label[c].empty() && !b.per_label[c].empty()) {
      double diff = 0.0;
      for (std::size_t q = 0; q < a.per_label[c].size(); ++q) {
        diff += std::abs(a.per_label[c][q] - b.per_label[c][q]);
      }
      d = std::min(1.0, diff / (static_cast<double>(a.per_label[c].size()) *
                                range));
    } else {
      d = 1.0;  // label present on exactly one side
    }
    acc += weight * d;
  }
  return acc;
}

double distance(const ResponseSummary& a, const ResponseSummary& b) {
  return hellinger_distance(a.label_counts, b.label_counts);
}

double distance(const ConditionalSummary& a, const ConditionalSummary& b) {
  // Mass-weighted rather than flat average: the count histograms the client
  // transmits already encode each label's data mass, and weighting by it
  // stops barely-populated noise labels from dominating the comparison (see
  // weighted_hellinger_distance).
  return weighted_hellinger_distance(a.per_label, b.per_label);
}

std::size_t summary_size(const ResponseSummary& s) {
  return s.label_counts.bins();
}

std::size_t summary_size(const ConditionalSummary& s) {
  std::size_t total = 0;
  for (const auto& h : s.per_label) total += h.bins();
  return total;
}

}  // namespace haccs::stats
