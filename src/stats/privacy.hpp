// Differential privacy via the Laplace mechanism (paper §IV-B).
//
// A histogram satisfies (ε, 0)-differential privacy when independent
// Laplace(0, 1/ε) noise is added to every bin (histogram queries have L1
// sensitivity 1: one user's sample moves exactly one bin by one count).
// Smaller ε means more noise — Var[λ] = 2 (1/ε)² (Eq. 5) — trading clustering
// accuracy for privacy (the Fig. 8 experiments).
//
// Negative noisy counts are clamped to zero; clamping is post-processing and
// therefore preserves the DP guarantee.
#pragma once

#include "src/common/rng.hpp"
#include "src/stats/summary.hpp"

namespace haccs::stats {

/// Which perturbation realizes the privacy guarantee.
enum class NoiseMechanism {
  Laplace,   ///< (ε, 0)-DP, the paper's mechanism
  Gaussian,  ///< (ε, δ)-DP via σ = sqrt(2 ln(1.25/δ)) · Δ / ε
};

/// ε must be > 0; ε = +inf is treated as "no noise".
struct PrivacyConfig {
  double epsilon = 0.1;
  NoiseMechanism mechanism = NoiseMechanism::Laplace;
  /// δ for the Gaussian mechanism (ignored by Laplace).
  double delta = 1e-5;

  static PrivacyConfig none();
  bool enabled() const;
};

/// The Gaussian mechanism's noise stddev for sensitivity `sensitivity`.
double gaussian_noise_stddev(double epsilon, double delta,
                             double sensitivity = 1.0);

/// Adds Laplace(0, 1/ε) noise to every bin of `histogram` in place.
void privatize_histogram(Histogram& histogram, double epsilon, Rng& rng);

/// Adds mechanism-selected noise to every bin per `config`.
void privatize_histogram(Histogram& histogram, const PrivacyConfig& config,
                         Rng& rng);

/// Returns a privatized copy of a quantile summary: each reported quantile
/// is perturbed with mechanism noise scaled by its clamped-range sensitivity
/// (range / max(mass, 1)), then re-clamped and re-sorted. NOTE: this is the
/// standard clamped-range approximation, not a smooth-sensitivity analysis —
/// documented as an extension (the paper's §V-E future-work direction).
QuantileSummary privatize(const QuantileSummary& summary,
                          const QuantileSummaryConfig& qconfig,
                          const PrivacyConfig& config, Rng& rng);

/// Returns a privatized copy of the P(y) summary.
ResponseSummary privatize(const ResponseSummary& summary,
                          const PrivacyConfig& config, Rng& rng);

/// Returns a privatized copy of the P(X|y) summary (noise in every bin of
/// every per-label histogram).
ConditionalSummary privatize(const ConditionalSummary& summary,
                             const PrivacyConfig& config, Rng& rng);

/// Theoretical noise variance for a given ε (Eq. 5): 2 / ε².
double laplace_noise_variance(double epsilon);

}  // namespace haccs::stats
