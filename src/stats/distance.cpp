#include "src/stats/distance.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/common/mutation.hpp"
#include "src/stats/histogram.hpp"

namespace haccs::stats {

std::string to_string(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::Hellinger: return "hellinger";
    case DistanceKind::TotalVariation: return "tv";
    case DistanceKind::SymmetricKl: return "skl";
    case DistanceKind::JensenShannon: return "js";
    case DistanceKind::Cosine: return "cosine";
  }
  throw std::invalid_argument("to_string: bad DistanceKind");
}

DistanceKind parse_distance_kind(const std::string& name) {
  if (name == "hellinger") return DistanceKind::Hellinger;
  if (name == "tv" || name == "total-variation") return DistanceKind::TotalVariation;
  if (name == "skl" || name == "symmetric-kl") return DistanceKind::SymmetricKl;
  if (name == "js" || name == "jensen-shannon") return DistanceKind::JensenShannon;
  if (name == "cosine") return DistanceKind::Cosine;
  throw std::invalid_argument("unknown distance kind: " + name);
}

namespace {

std::vector<double> normalized(std::span<const double> v) {
  std::vector<double> out(v.size(), 0.0);
  double total = 0.0;
  for (double x : v) total += std::max(x, 0.0);
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = std::max(v[i], 0.0) / total;
  }
  return out;
}

bool is_zero(const std::vector<double>& v) {
  for (double x : v) {
    if (x != 0.0) return false;
  }
  return true;
}

double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q) {
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::abs(p[i] - q[i]);
  return acc / 2.0;
}

double kl(const std::vector<double>& p, const std::vector<double>& q) {
  // Additive smoothing keeps the divergence finite on disjoint supports.
  constexpr double kEps = 1e-9;
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] + kEps;
    const double qi = q[i] + kEps;
    acc += pi * std::log(pi / qi);
  }
  return std::max(acc, 0.0);
}

double jensen_shannon(const std::vector<double>& p,
                      const std::vector<double>& q) {
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = (p[i] + q[i]) / 2.0;
  const double js = (kl(p, m) + kl(q, m)) / 2.0;
  // Normalize by ln 2 so the square root lands in [0, 1].
  return std::sqrt(std::min(1.0, js / std::log(2.0)));
}

double cosine_distance(std::span<const double> p, std::span<const double> q) {
  double dot = 0.0, np = 0.0, nq = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double a = std::max(p[i], 0.0);
    const double b = std::max(q[i], 0.0);
    dot += a * b;
    np += a * a;
    nq += b * b;
  }
  if (np == 0.0 && nq == 0.0) return 0.0;
  if (np == 0.0 || nq == 0.0) return 1.0;
  const double cosine = dot / (std::sqrt(np) * std::sqrt(nq));
  return 1.0 - std::min(1.0, cosine);
}

}  // namespace

double distribution_distance(std::span<const double> p,
                             std::span<const double> q, DistanceKind kind) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("distribution_distance: arity mismatch");
  }
  if (kind == DistanceKind::Hellinger) {
#if HACCS_MUTATIONS
    // Deliberate bug for the fuzzer's mutation-smoke check (TESTING.md):
    // answer L2 between the normalized distributions instead of Hellinger —
    // cluster structure quietly degrades with no crash to catch.
    if (mutation::enabled(mutation::Kind::ClusterDistanceL2)) {
      const auto pn = normalized(p);
      const auto qn = normalized(q);
      double acc = 0.0;
      for (std::size_t i = 0; i < pn.size(); ++i) {
        acc += (pn[i] - qn[i]) * (pn[i] - qn[i]);
      }
      return std::sqrt(acc);
    }
#endif
    return hellinger_distance(p, q);
  }
  if (kind == DistanceKind::Cosine) return cosine_distance(p, q);

  const auto pn = normalized(p);
  const auto qn = normalized(q);
  const bool pz = is_zero(pn), qz = is_zero(qn);
  if (pz && qz) return 0.0;
  if (pz || qz) {
    // One side empty: the bounded kinds return their maximum; symmetric KL
    // returns the smoothed divergence to the zero vector.
    if (kind == DistanceKind::TotalVariation) return 1.0;
    if (kind == DistanceKind::JensenShannon) return 1.0;
  }
  switch (kind) {
    case DistanceKind::TotalVariation: return total_variation(pn, qn);
    case DistanceKind::SymmetricKl: return kl(pn, qn) + kl(qn, pn);
    case DistanceKind::JensenShannon: return jensen_shannon(pn, qn);
    default: break;
  }
  throw std::invalid_argument("distribution_distance: bad kind");
}

}  // namespace haccs::stats
