// Alternative distribution distances for the summary-comparison ablation.
//
// The paper selects the Hellinger distance (Eq. 3) for its zero-tolerance
// and boundedness, and names "different kinds of privacy-preserving data
// summaries" as future work (§V-E). This module provides the standard
// alternatives so the choice can be ablated: total variation, symmetric
// (Jeffreys) KL divergence with additive smoothing, Jensen-Shannon distance,
// and cosine distance. All operate on unnormalized non-negative count
// vectors and normalize internally, like hellinger_distance.
#pragma once

#include <span>
#include <string>

namespace haccs::stats {

enum class DistanceKind {
  Hellinger,       ///< the paper's choice (Eq. 3)
  TotalVariation,  ///< (1/2) * L1 between distributions; bounded [0, 1]
  SymmetricKl,     ///< Jeffreys divergence with smoothing; unbounded
  JensenShannon,   ///< sqrt(JS divergence / ln 2); bounded [0, 1]
  Cosine,          ///< 1 - cos angle between count vectors; bounded [0, 1]
};

std::string to_string(DistanceKind kind);
DistanceKind parse_distance_kind(const std::string& name);

/// Distance between two count vectors under the chosen kind. Inputs are
/// clamped at zero and normalized (except Cosine, which is scale-invariant
/// by construction). Two all-zero vectors have distance 0; a zero vector vs
/// a distribution takes each kind's maximum (1 for the bounded kinds).
double distribution_distance(std::span<const double> p,
                             std::span<const double> q, DistanceKind kind);

}  // namespace haccs::stats
