// Sketched distribution summaries for scale (extends §IV-A's machinery).
//
// The exact summaries (summary.hpp) grow with the class count and feature
// resolution, and comparing all N² pairs of them caps the selector far below
// millions of clients. Two sketch primitives fix the constants:
//
//   * CountMinSketch — fixed-width count sketch over arbitrary index spaces
//     (LEFL-style low-entropy grouping sketches; "Efficient Data
//     Distribution Estimation for Accelerated Federated Learning" shows
//     sketched label/feature summaries preserve cluster structure). Point
//     estimates never underestimate and overestimate by at most
//     e/width x total mass with high probability.
//
//   * sqrt-embedding projection — the Hellinger distance is, exactly, the
//     Euclidean distance between sqrt-probability vectors divided by √2
//     (Eq. 3). Embedding clients as √p and (when the native dimension
//     exceeds the sketch budget) projecting with a signed-hash count-sketch
//     projection preserves pairwise L2 in expectation, giving a
//     bounded-error Hellinger estimate from O(dim) floats per client. When
//     the native dimension fits the budget the embedding is the identity
//     and the estimate is exact for P(y) summaries.
//
// All hashing is deterministic (SplitMix64 on (seed, index)) so sketches
// built on different machines — or on a client vs the server — agree bit
// for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace haccs::stats {

/// Count-min sketch: depth rows of width counters; add() increments one
/// counter per row, estimate() takes the min. Deterministically seeded.
class CountMinSketch {
 public:
  CountMinSketch(std::size_t width, std::size_t depth,
                 std::uint64_t seed = 0x5eedc0de);

  void add(std::uint64_t index, double weight = 1.0);
  /// Never below the true count; above it by at most (e/width) * total()
  /// with probability 1 - exp(-depth) per query.
  double estimate(std::uint64_t index) const;
  double total() const { return total_; }
  std::size_t width() const { return width_; }
  std::size_t depth() const { return rows_.size() / width_; }

  /// Merges another sketch with identical (width, depth, seed) geometry.
  void merge(const CountMinSketch& other);

 private:
  std::size_t bucket(std::size_t row, std::uint64_t index) const;

  std::size_t width_;
  std::uint64_t seed_;
  std::vector<double> rows_;  ///< depth x width, row-major
  double total_ = 0.0;
};

/// Signed-hash (count-sketch / feature-hashing) projection of `v` into
/// `dim` buckets: out[h(i) % dim] += s(i) * v[i] with s(i) in {-1, +1}.
/// Preserves inner products in expectation, so L2 distances between
/// projections estimate L2 distances between inputs. When v.size() <= dim
/// the projection is the identity (zero-padded) and therefore exact.
std::vector<float> project_embedding(std::span<const double> v,
                                     std::size_t dim, std::uint64_t seed);

/// Adds one (virtual index, value) contribution into an existing embedding
/// using the same signed-hash scheme as project_embedding. Lets callers
/// project structured feature spaces — e.g. (label, bin) pairs packed into
/// one index — without materializing the flat vector first.
void project_add(std::span<float> out, std::uint64_t index, double value,
                 std::uint64_t seed);

/// The sqrt-probability embedding of a count vector: sqrt(v_i / sum v).
/// All-zero input embeds to the zero vector (matching Histogram::normalized,
/// where "no data" is maximally distinguishable under Hellinger).
std::vector<double> sqrt_embedding(std::span<const double> counts);

/// Hellinger estimate from two sqrt-embeddings: ||a - b|| / sqrt(2), clamped
/// into [0, 1]. Exact when the embeddings are unprojected sqrt-probability
/// vectors; bounded-error after project_embedding.
double hellinger_from_embeddings(std::span<const float> a,
                                 std::span<const float> b);

}  // namespace haccs::stats
