#include "src/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace haccs::stats {

Histogram::Histogram(std::size_t bins) : counts_(bins, 0.0) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
}

Histogram::Histogram(std::size_t bins, double lo, double hi)
    : counts_(bins, 0.0), value_binned_(true), lo_(lo), hi_(hi) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

double Histogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

void Histogram::add_count(std::size_t bin, double weight) {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::add_count: bin out of range");
  }
  counts_[bin] += weight;
}

void Histogram::observe(double value, double weight) {
  if (!value_binned_) {
    throw std::logic_error("Histogram::observe requires a value-binned histogram");
  }
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
}

void Histogram::set_counts(std::vector<double> counts) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::set_counts: arity mismatch");
  }
  counts_ = std::move(counts);
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  const double t = total();
  if (t <= 0.0) return out;  // zero vector by design (see header)
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = std::max(counts_[i], 0.0) / t;
  }
  return out;
}

void Histogram::clamp_nonnegative() {
  for (double& c : counts_) c = std::max(c, 0.0);
}

double hellinger_distance(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("hellinger_distance: arity mismatch");
  }
  double pt = 0.0, qt = 0.0;
  for (double v : p) pt += std::max(v, 0.0);
  for (double v : q) qt += std::max(v, 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = pt > 0.0 ? std::max(p[i], 0.0) / pt : 0.0;
    const double qi = qt > 0.0 ? std::max(q[i], 0.0) / qt : 0.0;
    const double d = std::sqrt(pi) - std::sqrt(qi);
    acc += d * d;
  }
  return std::sqrt(acc / 2.0);
}

double hellinger_distance(const Histogram& a, const Histogram& b) {
  return hellinger_distance(a.counts(), b.counts());
}

double average_hellinger_distance(std::span<const Histogram> a,
                                  std::span<const Histogram> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("average_hellinger_distance: arity mismatch");
  }
  if (a.empty()) {
    throw std::invalid_argument("average_hellinger_distance: empty sets");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += hellinger_distance(a[i], b[i]);
  }
  return acc / static_cast<double>(a.size());
}

double weighted_hellinger_distance(std::span<const Histogram> a,
                                   std::span<const Histogram> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("weighted_hellinger_distance: arity mismatch");
  }
  if (a.empty()) {
    throw std::invalid_argument("weighted_hellinger_distance: empty sets");
  }
  double grand_total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    grand_total += std::max(a[i].total(), 0.0) + std::max(b[i].total(), 0.0);
  }
  if (grand_total <= 0.0) return 0.0;  // no data on either side
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ta = std::max(a[i].total(), 0.0);
    const double tb = std::max(b[i].total(), 0.0);
    const double weight = (ta + tb) / grand_total;
    if (weight <= 0.0) continue;
    double d;
    if (ta > 0.0 && tb > 0.0) {
      d = hellinger_distance(a[i], b[i]);
    } else {
      d = 1.0;  // label present on exactly one side: maximally different
    }
    acc += weight * d;
  }
  return acc;
}

}  // namespace haccs::stats
