#include "src/stats/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/common/rng.hpp"

namespace haccs::stats {

namespace {

/// One SplitMix64 step keyed on (seed, index): cheap, stateless, and
/// identical across platforms (the same mixer Rng seeds with).
std::uint64_t mix(std::uint64_t seed, std::uint64_t index) {
  return SplitMix64(seed ^ (index * 0x9e3779b97f4a7c15ULL)).next();
}

}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), seed_(seed), rows_(width * depth, 0.0) {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument("CountMinSketch: zero geometry");
  }
}

std::size_t CountMinSketch::bucket(std::size_t row, std::uint64_t index) const {
  return static_cast<std::size_t>(mix(seed_ + row, index) % width_);
}

void CountMinSketch::add(std::uint64_t index, double weight) {
  if (weight < 0.0) {
    throw std::invalid_argument("CountMinSketch: negative weight");
  }
  const std::size_t depth = rows_.size() / width_;
  for (std::size_t r = 0; r < depth; ++r) {
    rows_[r * width_ + bucket(r, index)] += weight;
  }
  total_ += weight;
}

double CountMinSketch::estimate(std::uint64_t index) const {
  const std::size_t depth = rows_.size() / width_;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < depth; ++r) {
    best = std::min(best, rows_[r * width_ + bucket(r, index)]);
  }
  return best;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (other.width_ != width_ || other.rows_.size() != rows_.size() ||
      other.seed_ != seed_) {
    throw std::invalid_argument("CountMinSketch: geometry mismatch");
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) rows_[i] += other.rows_[i];
  total_ += other.total_;
}

std::vector<float> project_embedding(std::span<const double> v,
                                     std::size_t dim, std::uint64_t seed) {
  if (dim == 0) throw std::invalid_argument("project_embedding: dim == 0");
  std::vector<float> out(dim, 0.0f);
  if (v.size() <= dim) {
    // Identity path: no collisions, no sign flips — the estimate downstream
    // is exact (this is the common case for P(y) summaries, where the
    // native dimension is the class count).
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] = static_cast<float>(v[i]);
    }
    return out;
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == 0.0) continue;
    const std::uint64_t h = mix(seed, i);
    const std::size_t b = static_cast<std::size_t>((h >> 1) % dim);
    const double s = (h & 1u) != 0 ? 1.0 : -1.0;
    out[b] += static_cast<float>(s * v[i]);
  }
  return out;
}

void project_add(std::span<float> out, std::uint64_t index, double value,
                 std::uint64_t seed) {
  if (out.empty()) throw std::invalid_argument("project_add: empty output");
  if (value == 0.0) return;
  const std::uint64_t h = mix(seed, index);
  const std::size_t b = static_cast<std::size_t>((h >> 1) % out.size());
  const double s = (h & 1u) != 0 ? 1.0 : -1.0;
  out[b] += static_cast<float>(s * value);
}

std::vector<double> sqrt_embedding(std::span<const double> counts) {
  double total = 0.0;
  for (double c : counts) total += std::max(c, 0.0);
  std::vector<double> out(counts.size(), 0.0);
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = std::sqrt(std::max(counts[i], 0.0) / total);
  }
  return out;
}

double hellinger_from_embeddings(std::span<const float> a,
                                 std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hellinger_from_embeddings: arity mismatch");
  }
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sq += d * d;
  }
  return std::clamp(std::sqrt(sq / 2.0), 0.0, 1.0);
}

}  // namespace haccs::stats
