// Bridge between the stats summaries and the net wire format (paper §IV-A:
// clients upload distribution summaries once, before training).
//
// net::SummaryMsg is deliberately generic — kind tag, value range, a list of
// double tables, a mass vector — so src/net never depends on src/stats. This
// header maps the three concrete summary types onto it:
//   * ResponseSummary      -> one table row (the P(y) label counts)
//   * ConditionalSummary   -> one row per label (P(X|y) bin counts), lo/hi
//                             carrying the binning range
//   * QuantileSummary      -> one row per label (the quantiles) + mass
// Decoders throw net::WireError on a kind mismatch or malformed tables, the
// same failure surface as the payload codecs.
#pragma once

#include <cstdint>

#include "src/net/messages.hpp"
#include "src/stats/summary.hpp"

namespace haccs::stats {

net::SummaryMsg encode_summary_msg(std::uint32_t client_id,
                                   const ResponseSummary& summary);
net::SummaryMsg encode_summary_msg(std::uint32_t client_id,
                                   const ConditionalSummary& summary,
                                   const ConditionalSummaryConfig& config);
net::SummaryMsg encode_summary_msg(std::uint32_t client_id,
                                   const QuantileSummary& summary,
                                   const QuantileSummaryConfig& config);

ResponseSummary decode_response_summary(const net::SummaryMsg& msg);
ConditionalSummary decode_conditional_summary(const net::SummaryMsg& msg);
QuantileSummary decode_quantile_summary(const net::SummaryMsg& msg);

}  // namespace haccs::stats
