#include "src/stats/privacy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace haccs::stats {

PrivacyConfig PrivacyConfig::none() {
  return PrivacyConfig{std::numeric_limits<double>::infinity()};
}

bool PrivacyConfig::enabled() const {
  return std::isfinite(epsilon);
}

double gaussian_noise_stddev(double epsilon, double delta, double sensitivity) {
  if (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("gaussian_noise_stddev: bad (epsilon, delta)");
  }
  return std::sqrt(2.0 * std::log(1.25 / delta)) * sensitivity / epsilon;
}

void privatize_histogram(Histogram& histogram, const PrivacyConfig& config,
                         Rng& rng) {
  if (!config.enabled()) return;
  if (config.mechanism == NoiseMechanism::Laplace) {
    privatize_histogram(histogram, config.epsilon, rng);
    return;
  }
  const double sigma =
      gaussian_noise_stddev(config.epsilon, config.delta, /*sensitivity=*/1.0);
  std::vector<double> counts(histogram.counts().begin(),
                             histogram.counts().end());
  for (double& c : counts) c += rng.normal(0.0, sigma);
  histogram.set_counts(std::move(counts));
  histogram.clamp_nonnegative();
}

QuantileSummary privatize(const QuantileSummary& summary,
                          const QuantileSummaryConfig& qconfig,
                          const PrivacyConfig& config, Rng& rng) {
  QuantileSummary out = summary;
  if (!config.enabled()) return out;
  const double range = qconfig.hi - qconfig.lo;
  for (std::size_t c = 0; c < out.per_label.size(); ++c) {
    auto& qs = out.per_label[c];
    if (qs.empty()) continue;
    // Clamped-range sensitivity: one value change moves a quantile by at
    // most range / mass.
    const double sensitivity = range / std::max(out.mass[c], 1.0);
    for (double& q : qs) {
      if (config.mechanism == NoiseMechanism::Laplace) {
        q += rng.laplace(0.0, sensitivity / config.epsilon);
      } else {
        q += rng.normal(0.0, gaussian_noise_stddev(config.epsilon,
                                                   config.delta, sensitivity));
      }
      q = std::clamp(q, qconfig.lo, qconfig.hi);
    }
    std::sort(qs.begin(), qs.end());  // restore monotonicity
  }
  return out;
}

void privatize_histogram(Histogram& histogram, double epsilon, Rng& rng) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("privatize_histogram: epsilon must be > 0");
  }
  if (!std::isfinite(epsilon)) return;
  std::vector<double> counts(histogram.counts().begin(),
                             histogram.counts().end());
  const double scale = 1.0 / epsilon;
  for (double& c : counts) c += rng.laplace(0.0, scale);
  histogram.set_counts(std::move(counts));
  histogram.clamp_nonnegative();
}

ResponseSummary privatize(const ResponseSummary& summary,
                          const PrivacyConfig& config, Rng& rng) {
  ResponseSummary out = summary;
  if (config.enabled()) {
    privatize_histogram(out.label_counts, config, rng);
  }
  return out;
}

ConditionalSummary privatize(const ConditionalSummary& summary,
                             const PrivacyConfig& config, Rng& rng) {
  ConditionalSummary out = summary;
  if (config.enabled()) {
    for (auto& hist : out.per_label) {
      privatize_histogram(hist, config, rng);
    }
  }
  return out;
}

double laplace_noise_variance(double epsilon) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("laplace_noise_variance: epsilon must be > 0");
  }
  return 2.0 / (epsilon * epsilon);
}

}  // namespace haccs::stats
