#include "src/stats/metrics.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace haccs::stats {

PairwiseClusteringScores pairwise_clustering_scores(
    std::span<const int> predicted, std::span<const int> truth) {
  if (predicted.size() != truth.size()) {
    throw std::invalid_argument("pairwise_clustering_scores: size mismatch");
  }
  const std::size_t n = predicted.size();
  if (n < 2) {
    throw std::invalid_argument("pairwise_clustering_scores: need >= 2 points");
  }
  double tp = 0, fp = 0, fn = 0, tn = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Noise (negative labels) = singleton: never co-clustered.
      const bool pred_together =
          predicted[i] >= 0 && predicted[i] == predicted[j];
      const bool true_together = truth[i] == truth[j];
      if (pred_together && true_together) ++tp;
      else if (pred_together && !true_together) ++fp;
      else if (!pred_together && true_together) ++fn;
      else ++tn;
    }
  }
  PairwiseClusteringScores s;
  s.precision = (tp + fp) > 0 ? tp / (tp + fp) : 1.0;
  s.recall = (tp + fn) > 0 ? tp / (tp + fn) : 1.0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  s.rand_index = (tp + tn) / (tp + tn + fp + fn);
  return s;
}

double exact_cluster_recovery(std::span<const int> predicted,
                              std::span<const int> truth) {
  if (predicted.size() != truth.size()) {
    throw std::invalid_argument("exact_cluster_recovery: size mismatch");
  }
  // Member lists per ground-truth group and per predicted cluster.
  std::map<int, std::vector<std::size_t>> true_groups;
  std::map<int, std::vector<std::size_t>> pred_clusters;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    true_groups[truth[i]].push_back(i);
    if (predicted[i] >= 0) {
      pred_clusters[predicted[i]].push_back(i);
    } else {
      // Each noise point is its own singleton cluster (unique negative key).
      pred_clusters[-static_cast<int>(i) - 1000000].push_back(i);
    }
  }
  if (true_groups.empty()) {
    throw std::invalid_argument("exact_cluster_recovery: empty input");
  }
  std::size_t recovered = 0;
  for (const auto& [gid, members] : true_groups) {
    for (const auto& [cid, cluster] : pred_clusters) {
      if (cluster == members) {  // both sorted by construction
        ++recovered;
        break;
      }
    }
  }
  return static_cast<double>(recovered) /
         static_cast<double>(true_groups.size());
}

MeanCi mean_ci95(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("mean_ci95: empty input");
  }
  const auto n = static_cast<double>(values.size());
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= n;
  if (values.size() == 1) return {mean, 0.0};
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= (n - 1.0);
  return {mean, 1.96 * std::sqrt(var / n)};
}

}  // namespace haccs::stats
