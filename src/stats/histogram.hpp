// Histograms and the Hellinger distance (paper Eq. 3).
//
// Histograms are the paper's privacy-preserving distribution summary: the
// P(y) summary is a label-count histogram, the P(X|y) summary is one
// value-binned feature histogram per label. Hellinger is chosen because it
// tolerates empty bins and is bounded in [0, 1] (Eq. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace haccs::stats {

class Histogram {
 public:
  /// Count histogram over `bins` categories (used for label counts).
  explicit Histogram(std::size_t bins);

  /// Value-binned histogram over [lo, hi); values outside the range clamp to
  /// the boundary bins (used for pixel/feature distributions).
  Histogram(std::size_t bins, double lo, double hi);

  std::size_t bins() const { return counts_.size(); }
  double total() const;

  /// Adds `weight` to a category bin directly.
  void add_count(std::size_t bin, double weight = 1.0);

  /// Bins a value (requires the value-binned constructor).
  void observe(double value, double weight = 1.0);

  std::span<const double> counts() const { return counts_; }
  void set_counts(std::vector<double> counts);

  /// Probability vector: counts / total. An all-zero histogram normalizes to
  /// the zero vector (NOT uniform) so that "no data for this label" is
  /// maximally distinguishable under Hellinger.
  std::vector<double> normalized() const;

  /// Clamps negative bins (which DP noise can produce) to zero.
  void clamp_nonnegative();

 private:
  std::vector<double> counts_;
  bool value_binned_ = false;
  double lo_ = 0.0, hi_ = 0.0;
};

/// Hellinger distance between two probability vectors (paper Eq. 3):
/// H(p, q) = (1/sqrt(2)) * || sqrt(p) - sqrt(q) ||_2.
/// Inputs need not be normalized — they are normalized internally (zero
/// vectors stay zero). Result is in [0, 1] for distributions.
double hellinger_distance(std::span<const double> p, std::span<const double> q);

/// Hellinger over two histograms' normalized forms.
double hellinger_distance(const Histogram& a, const Histogram& b);

/// Average Hellinger distance across paired histogram sets (the paper's
/// distance for the P(X|y) summary). The sets must have equal arity; pairs
/// where both histograms are empty contribute 0.
double average_hellinger_distance(std::span<const Histogram> a,
                                  std::span<const Histogram> b);

/// Mass-weighted average Hellinger across paired histogram sets: each label's
/// Hellinger distance is weighted by that label's share of the two clients'
/// total histogram mass, w_c = (total_a(c) + total_b(c)) / (total_a + total_b).
/// The weights are derived from the transmitted count histograms themselves,
/// so no information beyond the P(X|y) summary is used. This keeps rarely-
/// populated noise labels from swamping the comparison of the distributions
/// that actually hold the data — the unweighted average assigns a label with
/// 3 samples the same influence as one with 300. Labels absent on exactly
/// one side contribute their (halved) mass at the maximal distance 1.
double weighted_hellinger_distance(std::span<const Histogram> a,
                                   std::span<const Histogram> b);

}  // namespace haccs::stats
