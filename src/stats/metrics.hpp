// Evaluation metrics: clustering quality against ground truth, and basic
// summary statistics (mean, 95% confidence interval) for experiment reports.
#pragma once

#include <span>
#include <vector>

namespace haccs::stats {

struct PairwiseClusteringScores {
  double precision = 0.0;  ///< of pairs predicted together, truly together
  double recall = 0.0;     ///< of truly-together pairs, predicted together
  double f1 = 0.0;
  double rand_index = 0.0;
};

/// Pairwise co-membership scores for a predicted labeling vs. ground truth.
/// Noise points (label < 0) are treated as singleton clusters.
PairwiseClusteringScores pairwise_clustering_scores(
    std::span<const int> predicted, std::span<const int> truth);

/// The paper's Fig. 8a metric — "the number of clusters we correctly
/// identify": fraction of ground-truth groups whose member set is exactly
/// one predicted cluster. Noise points never form a correct cluster unless
/// the ground-truth group is a singleton.
double exact_cluster_recovery(std::span<const int> predicted,
                              std::span<const int> truth);

struct MeanCi {
  double mean = 0.0;
  double margin = 0.0;  ///< half-width of the 95% confidence interval
};

/// Sample mean and normal-approximation 95% CI margin (1.96 * s / sqrt(n)).
/// Requires at least one value; margin is 0 for n == 1.
MeanCi mean_ci95(std::span<const double> values);

}  // namespace haccs::stats
