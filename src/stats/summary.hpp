// Client data-distribution summaries (paper §IV-A).
//
// The factorization P(X, y) = P(y) P(X | y) (Eq. 2) motivates two summaries:
//   * ResponseSummary      — the label histogram P(y), Θ(c) bytes.
//   * ConditionalSummary   — one feature histogram per label, P(X|y),
//                            Θ(c·p) bytes for p bins.
// Both can be privatized with the Laplace mechanism (privacy.hpp) before
// leaving the client. SummaryKind selects which summary a HACCS deployment
// uses; distance() dispatches to Hellinger / average-Hellinger accordingly.
#pragma once

#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/stats/histogram.hpp"

namespace haccs::stats {

enum class SummaryKind {
  Response,     ///< P(y) label histogram
  Conditional,  ///< P(X|y) per-label feature histograms
  Quantile,     ///< per-label feature quantile sketches (extension; §V-E
                ///< names alternative summaries as future work)
};

std::string to_string(SummaryKind kind);
SummaryKind parse_summary_kind(const std::string& name);

struct ResponseSummary {
  Histogram label_counts;

  explicit ResponseSummary(std::size_t classes) : label_counts(classes) {}
};

struct ConditionalSummary {
  /// One feature-value histogram per class label; empty histogram when the
  /// label does not occur on the client.
  std::vector<Histogram> per_label;
};

struct ConditionalSummaryConfig {
  std::size_t bins = 16;
  double lo = -4.0;  ///< feature-value range covered by the bins
  double hi = 4.0;
};

/// Computes the P(y) summary from a local dataset.
ResponseSummary summarize_response(const data::Dataset& dataset);

/// Computes the P(X|y) summary: all feature values of samples with label c
/// are pooled into the c-th histogram.
ConditionalSummary summarize_conditional(const data::Dataset& dataset,
                                         const ConditionalSummaryConfig& config);

/// Per-label feature quantile sketch: for each class label, the empirical
/// quantiles of all feature values of that label's samples, plus the sample
/// mass. More compact than a histogram at the same resolution and directly
/// comparable across clients without bin alignment.
struct QuantileSummary {
  /// quantiles[c] is empty when label c has no samples; otherwise it holds
  /// `num_quantiles` values at probabilities (i+1)/(num_quantiles+1).
  std::vector<std::vector<double>> per_label;
  std::vector<double> mass;  ///< feature-value count per label
};

struct QuantileSummaryConfig {
  std::size_t num_quantiles = 9;  ///< deciles by default
  /// Values are clamped into [lo, hi] before sketching (bounds the
  /// sensitivity of each quantile for the privacy mechanism).
  double lo = -4.0;
  double hi = 4.0;
};

QuantileSummary summarize_quantiles(const data::Dataset& dataset,
                                    const QuantileSummaryConfig& config);

/// Mass-weighted mean absolute quantile difference, normalized by the
/// (hi - lo) range so the result lies in [0, 1]. Labels present on exactly
/// one side contribute distance 1 at their (halved) mass share.
double quantile_distance(const QuantileSummary& a, const QuantileSummary& b,
                         const QuantileSummaryConfig& config);

/// Hellinger distance between two response summaries (Eq. 3).
double distance(const ResponseSummary& a, const ResponseSummary& b);

/// Average Hellinger distance between two conditional summaries.
double distance(const ConditionalSummary& a, const ConditionalSummary& b);

/// Serialized size of a summary in doubles — used to report the
/// communication cost Θ(c) vs Θ(c·p) discussed in §IV-A.
std::size_t summary_size(const ResponseSummary& s);
std::size_t summary_size(const ConditionalSummary& s);

}  // namespace haccs::stats
