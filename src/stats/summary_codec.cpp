#include "src/stats/summary_codec.hpp"

#include <vector>

#include "src/net/wire.hpp"

namespace haccs::stats {

namespace {
void expect_kind(const net::SummaryMsg& msg, SummaryKind kind,
                 const char* what) {
  if (msg.kind != static_cast<std::uint8_t>(kind)) {
    throw net::WireError(std::string("summary codec: message is not a ") +
                         what + " summary");
  }
}
}  // namespace

net::SummaryMsg encode_summary_msg(std::uint32_t client_id,
                                   const ResponseSummary& summary) {
  net::SummaryMsg msg;
  msg.client_id = client_id;
  msg.kind = static_cast<std::uint8_t>(SummaryKind::Response);
  const auto counts = summary.label_counts.counts();
  msg.tables.emplace_back(counts.begin(), counts.end());
  return msg;
}

net::SummaryMsg encode_summary_msg(std::uint32_t client_id,
                                   const ConditionalSummary& summary,
                                   const ConditionalSummaryConfig& config) {
  net::SummaryMsg msg;
  msg.client_id = client_id;
  msg.kind = static_cast<std::uint8_t>(SummaryKind::Conditional);
  msg.lo = config.lo;
  msg.hi = config.hi;
  msg.tables.reserve(summary.per_label.size());
  for (const auto& hist : summary.per_label) {
    const auto counts = hist.counts();
    msg.tables.emplace_back(counts.begin(), counts.end());
  }
  return msg;
}

net::SummaryMsg encode_summary_msg(std::uint32_t client_id,
                                   const QuantileSummary& summary,
                                   const QuantileSummaryConfig& config) {
  net::SummaryMsg msg;
  msg.client_id = client_id;
  msg.kind = static_cast<std::uint8_t>(SummaryKind::Quantile);
  msg.lo = config.lo;
  msg.hi = config.hi;
  msg.tables = summary.per_label;
  msg.mass = summary.mass;
  return msg;
}

ResponseSummary decode_response_summary(const net::SummaryMsg& msg) {
  expect_kind(msg, SummaryKind::Response, "response");
  if (msg.tables.size() != 1 || msg.tables.front().empty()) {
    throw net::WireError("summary codec: response summary needs one "
                         "non-empty label-count row");
  }
  ResponseSummary summary(msg.tables.front().size());
  summary.label_counts.set_counts(msg.tables.front());
  return summary;
}

ConditionalSummary decode_conditional_summary(const net::SummaryMsg& msg) {
  expect_kind(msg, SummaryKind::Conditional, "conditional");
  if (!(msg.lo < msg.hi)) {
    throw net::WireError("summary codec: conditional summary needs lo < hi");
  }
  ConditionalSummary summary;
  summary.per_label.reserve(msg.tables.size());
  for (const auto& row : msg.tables) {
    if (row.empty()) {
      throw net::WireError("summary codec: empty conditional histogram row");
    }
    Histogram hist(row.size(), msg.lo, msg.hi);
    hist.set_counts(row);
    summary.per_label.push_back(std::move(hist));
  }
  return summary;
}

QuantileSummary decode_quantile_summary(const net::SummaryMsg& msg) {
  expect_kind(msg, SummaryKind::Quantile, "quantile");
  if (msg.mass.size() != msg.tables.size()) {
    throw net::WireError(
        "summary codec: quantile mass/table arity mismatch");
  }
  QuantileSummary summary;
  summary.per_label = msg.tables;
  summary.mass = msg.mass;
  return summary;
}

}  // namespace haccs::stats
