// Metrics registry: process-global named counters, gauges, and fixed-bucket
// histograms, snapshotable to JSON.
//
// Instrumentation sites cache the reference once (registration takes a
// mutex; the instruments themselves are lock-free atomics):
//
//   static obs::Counter& rounds =
//       obs::Registry::global().counter("rounds_total");
//   rounds.inc();
//
// All mutating calls are gated on metrics_enabled(): with metrics off every
// site pays one relaxed atomic load and nothing else, and registry state
// stays frozen (verified by ObsDisabled tests). Registered instruments are
// never erased — reset() zeroes values in place — so cached references stay
// valid for the process lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace haccs::obs {

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1);
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. queue depth).
class Gauge {
 public:
  void set(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges of the first
/// N buckets; one implicit overflow bucket catches everything above the
/// last edge. Observation is lock-free (relaxed atomics per bucket).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram edges for wall-clock milliseconds (sub-ms to minutes).
const std::vector<double>& default_ms_buckets();

class Registry {
 public:
  static Registry& global();

  /// Returns the named instrument, creating it on first use. The reference
  /// is stable for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`; defaults to
  /// default_ms_buckets().
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds = {});

  /// Snapshot of every instrument, keys sorted:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  /// Prometheus text exposition (format 0.0.4): every instrument prefixed
  /// `haccs_`, one `# TYPE` line per family, histogram buckets cumulative
  /// with a `+Inf` edge plus `_sum`/`_count` rows.
  std::string to_prometheus() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

  /// Zeroes every instrument in place (tests); registrations survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace haccs::obs
