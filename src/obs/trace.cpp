#include "src/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "src/obs/obs.hpp"

namespace haccs::obs {

namespace {

std::atomic<std::uint64_t> g_next_span{0};
std::atomic<std::uint64_t> g_span_salt{0};

// Innermost active Span on this thread; restored on destruction so sibling
// spans see the same parent and nested spans chain correctly.
thread_local std::uint64_t t_open_span = 0;

// Round context published by the engine (set_round_context). Written and
// read on the round loop's thread; relaxed atomics keep cross-thread
// readers (worker heartbeat threads never read these — they cache their
// own copy) well-defined anyway.
std::atomic<std::uint64_t> g_round_trace_id{0};
std::atomic<std::uint64_t> g_round_parent_span{0};
std::atomic<std::int64_t> g_round_index{-1};

void append_args(std::string& out, std::uint64_t span_id,
                 std::uint64_t parent_id, std::int64_t round) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",\"args\":{\"span\":%llu,\"parent\":%llu,\"round\":%lld}",
                static_cast<unsigned long long>(span_id),
                static_cast<unsigned long long>(parent_id),
                static_cast<long long>(round));
  out += buf;
}

void append_event(std::string& out, bool& first, int pid,
                  const std::string& name, const std::string& category,
                  std::uint32_t tid, std::uint64_t ts_ns, std::uint64_t dur_ns,
                  bool instant, std::uint64_t span_id, std::uint64_t parent_id,
                  std::int64_t round) {
  // Chrome trace timestamps are microseconds; keep ns precision in the
  // fraction.
  const double ts_us = static_cast<double>(ts_ns) * 1e-3;
  char buf[160];
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"" + name + "\",\"cat\":\"" + category + "\"";
  if (instant) {
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"i\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f,"
                  "\"s\":\"t\"",
                  pid, tid, ts_us);
  } else {
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f",
                  pid, tid, ts_us, static_cast<double>(dur_ns) * 1e-3);
  }
  out += buf;
  if (span_id != 0) append_args(out, span_id, parent_id, round);
  out += '}';
}

void append_process_name(std::string& out, bool& first, int pid,
                         const std::string& label) {
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"args\":{\"name\":\"" + json_escape(label) +
         "\"}}";
}

}  // namespace

std::uint64_t next_span_id() {
  return g_span_salt.load(std::memory_order_relaxed) +
         g_next_span.fetch_add(1, std::memory_order_relaxed) + 1;
}

void set_span_id_salt(std::uint64_t salt) {
  g_span_salt.store(salt, std::memory_order_relaxed);
}

std::uint64_t current_span_id() { return t_open_span; }

std::uint64_t process_trace_id() {
  static const std::uint64_t id =
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()) |
      1;
  return id;
}

void set_round_context(const TraceContext& ctx) {
  g_round_trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  g_round_parent_span.store(ctx.parent_span, std::memory_order_relaxed);
  g_round_index.store(ctx.round, std::memory_order_relaxed);
}

void clear_round_context() {
  g_round_trace_id.store(0, std::memory_order_relaxed);
  g_round_parent_span.store(0, std::memory_order_relaxed);
  g_round_index.store(-1, std::memory_order_relaxed);
}

TraceContext round_context() {
  TraceContext ctx;
  ctx.trace_id = g_round_trace_id.load(std::memory_order_relaxed);
  ctx.parent_span = g_round_parent_span.load(std::memory_order_relaxed);
  ctx.round = g_round_index.load(std::memory_order_relaxed);
  return ctx;
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::record(const TraceEvent& event) {
  Shard& shard = shards_[event.tid % kShards];
  std::lock_guard lock(shard.mutex);
  shard.events.push_back(event);
}

std::size_t TraceBuffer::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.events.size();
  }
  return total;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

void TraceBuffer::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.events.clear();
  }
}

std::string TraceBuffer::to_chrome_json() const {
  const auto events = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  // Thread metadata first, so viewers label lanes before any event lands.
  for (std::uint32_t tid = 0; tid < thread_count(); ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid,
                  json_escape(thread_name(tid)).c_str());
    out += buf;
    first = false;
  }
  for (const TraceEvent& e : events) {
    append_event(out, first, /*pid=*/1, e.name, e.category, e.tid, e.ts_ns,
                 e.dur_ns, e.instant, e.span_id, e.parent_id, e.round);
  }
  out += "]}";
  return out;
}

bool TraceBuffer::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

PortableTraceEvent to_portable(const TraceEvent& event) {
  PortableTraceEvent out;
  out.name = event.name;
  out.category = event.category;
  out.tid = event.tid;
  out.ts_ns = event.ts_ns;
  out.dur_ns = event.dur_ns;
  out.span_id = event.span_id;
  out.parent_id = event.parent_id;
  out.round = event.round;
  out.instant = event.instant;
  return out;
}

std::string merged_chrome_json(const std::vector<TraceEvent>& server_events,
                               const std::vector<WorkerTrack>& workers) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  append_process_name(out, first, 1, "haccs_server");
  char buf[256];
  for (std::uint32_t tid = 0; tid < thread_count(); ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid,
                  json_escape(thread_name(tid)).c_str());
    out += buf;
    first = false;
  }
  // A worker may ship several shards (one per committed round); all shards
  // from one worker share a pid so Perfetto shows a single track per
  // process, with the metadata record emitted once.
  std::vector<std::uint32_t> named;
  for (const WorkerTrack& track : workers) {
    const int pid = 2 + static_cast<int>(track.worker_id);
    if (std::find(named.begin(), named.end(), track.worker_id) ==
        named.end()) {
      named.push_back(track.worker_id);
      append_process_name(
          out, first, pid,
          track.label.empty()
              ? "haccs_worker-" + std::to_string(track.worker_id)
              : track.label);
    }
  }
  for (const TraceEvent& e : server_events) {
    append_event(out, first, /*pid=*/1, json_escape(e.name),
                 json_escape(e.category), e.tid, e.ts_ns, e.dur_ns, e.instant,
                 e.span_id, e.parent_id, e.round);
  }
  for (const WorkerTrack& track : workers) {
    const int pid = 2 + static_cast<int>(track.worker_id);
    for (const PortableTraceEvent& e : track.events) {
      const std::int64_t shifted =
          static_cast<std::int64_t>(e.ts_ns) + track.clock_offset_ns;
      append_event(out, first, pid, json_escape(e.name),
                   json_escape(e.category), e.tid,
                   shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0,
                   e.dur_ns, e.instant, e.span_id, e.parent_id, e.round);
    }
  }
  out += "]}";
  return out;
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category), active_(trace_enabled()) {
  if (active_) {
    begin_ns_ = now_ns();
    id_ = next_span_id();
    parent_id_ = t_open_span;
    t_open_span = id_;
  }
}

Span::~Span() {
  if (!active_) return;
  t_open_span = parent_id_;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.tid = thread_id();
  event.ts_ns = begin_ns_;
  event.dur_ns = now_ns() - begin_ns_;
  event.span_id = id_;
  event.parent_id = parent_id_;
  event.round = g_round_index.load(std::memory_order_relaxed);
  TraceBuffer::global().record(event);
}

void instant(const char* name, const char* category) {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = thread_id();
  event.ts_ns = now_ns();
  event.instant = true;
  event.parent_id = t_open_span;
  event.round = g_round_index.load(std::memory_order_relaxed);
  TraceBuffer::global().record(event);
}

}  // namespace haccs::obs
