#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "src/obs/obs.hpp"

namespace haccs::obs {

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::record(const TraceEvent& event) {
  Shard& shard = shards_[event.tid % kShards];
  std::lock_guard lock(shard.mutex);
  shard.events.push_back(event);
}

std::size_t TraceBuffer::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.events.size();
  }
  return total;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

void TraceBuffer::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.events.clear();
  }
}

std::string TraceBuffer::to_chrome_json() const {
  const auto events = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  // Thread metadata first, so viewers label lanes before any event lands.
  for (std::uint32_t tid = 0; tid < thread_count(); ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid,
                  json_escape(thread_name(tid)).c_str());
    out += buf;
    first = false;
  }
  for (const TraceEvent& e : events) {
    // Chrome trace timestamps are microseconds; keep ns precision in the
    // fraction.
    const double ts_us = static_cast<double>(e.ts_ns) * 1e-3;
    if (e.instant) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"s\":\"t\"}",
                    first ? "" : ",", e.name, e.category, e.tid, ts_us);
    } else {
      const double dur_us = static_cast<double>(e.dur_ns) * 1e-3;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                    first ? "" : ",", e.name, e.category, e.tid, ts_us,
                    dur_us);
    }
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

bool TraceBuffer::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category), active_(trace_enabled()) {
  if (active_) begin_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.tid = thread_id();
  event.ts_ns = begin_ns_;
  event.dur_ns = now_ns() - begin_ns_;
  TraceBuffer::global().record(event);
}

void instant(const char* name, const char* category) {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = thread_id();
  event.ts_ns = now_ns();
  event.instant = true;
  TraceBuffer::global().record(event);
}

}  // namespace haccs::obs
