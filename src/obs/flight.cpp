#include "src/obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <ctime>

#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"

namespace haccs::obs {

namespace {

extern "C" void flight_signal_handler(int sig) {
  FlightRecorder::global().crash_dump();
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(const std::string& directory,
                            std::size_t max_rounds,
                            std::size_t max_log_lines) {
  std::lock_guard lock(mutex_);
  const std::time_t ts = std::time(nullptr);
  path_ = directory + "/flight-" + std::to_string(ts) + ".json";
  max_rounds_ = max_rounds;
  max_logs_ = max_log_lines;
  rounds_.clear();
  logs_.clear();
  degraded_rounds_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
  publish_locked();
}

void FlightRecorder::disable() {
  std::lock_guard lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  stable_.store(-1, std::memory_order_release);
  path_.clear();
  rounds_.clear();
  logs_.clear();
  degraded_rounds_ = 0;
}

std::string FlightRecorder::path() const {
  std::lock_guard lock(mutex_);
  return path_;
}

void FlightRecorder::record_round_event(const std::string& round_json) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  rounds_.push_back(round_json);
  while (rounds_.size() > max_rounds_) rounds_.pop_front();
  publish_locked();
}

void FlightRecorder::record_log_line(const std::string& line) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  logs_.push_back(line);
  while (logs_.size() > max_logs_) logs_.pop_front();
  publish_locked();
}

void FlightRecorder::note_quorum_degraded() {
  if (!enabled()) return;
  {
    std::lock_guard lock(mutex_);
    ++degraded_rounds_;
  }
  dump("quorum-degraded");
}

bool FlightRecorder::dump(const char* reason) {
  if (!enabled()) return false;
  std::string doc;
  std::string path;
  {
    std::lock_guard lock(mutex_);
    doc = render_locked(reason);
    path = path_;
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!wrote) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void FlightRecorder::install_crash_handlers() {
  struct sigaction action {};
  action.sa_handler = flight_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

void FlightRecorder::crash_dump() noexcept {
  const int idx = stable_.load(std::memory_order_acquire);
  if (idx < 0) return;
  // Only open/write/close below: this runs inside a SIGSEGV handler. path_
  // and the stable buffer are never mutated after publication, so reading
  // them without the mutex is safe unless the crash itself corrupted them —
  // in which case losing the dump is the acceptable outcome.
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  const char* data = buffers_[idx].data();
  std::size_t left = buffers_[idx].size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd, data, left);
    if (wrote <= 0) break;
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  ::close(fd);
}

std::string FlightRecorder::render_locked(const char* reason) const {
  std::string out = "{\"reason\":\"";
  out += json_escape(reason);
  out += "\",\"written_ns\":" + std::to_string(now_ns());
  out += ",\"degraded_rounds\":" + std::to_string(degraded_rounds_);
  out += ",\"rounds\":[";
  bool first = true;
  for (const std::string& r : rounds_) {
    if (!first) out += ',';
    first = false;
    out += r;
  }
  out += "],\"log_lines\":[";
  first = true;
  for (const std::string& line : logs_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(line) + '"';
  }
  out += "],\"metrics\":" + Registry::global().to_json();
  out += '}';
  return out;
}

void FlightRecorder::publish_locked() {
  const int next = 1 - (stable_.load(std::memory_order_relaxed) == 1 ? 1 : 0);
  buffers_[next] = render_locked("crash");
  stable_.store(next, std::memory_order_release);
}

}  // namespace haccs::obs
