// Crash flight recorder (DESIGN.md §5i): a fixed-size in-memory ring of the
// last N round events, recent log lines, and a metrics snapshot, dumped to
// `flight-<ts>.json` when a serving run dies.
//
// Two dump paths with very different constraints:
//   * normal (SIGTERM drain, quorum-degraded round): re-render with the
//     actual reason and write tmp + rename, so readers never observe a
//     half-written file;
//   * crash (SIGSEGV/SIGABRT): only async-signal-safe calls are legal, so
//     every mutation pre-renders the full document into one of two buffers
//     and atomically publishes the index — the handler just open()s and
//     write()s the stable buffer. Best-effort by construction: a corruption
//     that smashes the buffers themselves can still lose the dump.
//
// Disabled-path cost is the usual one relaxed atomic per probe; nothing is
// allocated and no clock is read until enable() is called.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace haccs::obs {

class FlightRecorder {
 public:
  static FlightRecorder& global();

  /// Arms the recorder: fixes the dump path to `directory`/flight-<ts>.json
  /// (ts = wall-clock seconds at enable) and starts retaining history.
  void enable(const std::string& directory, std::size_t max_rounds = 32,
              std::size_t max_log_lines = 128);
  /// Disarms and drops retained state (tests).
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The fixed dump path chosen at enable(); empty while disabled.
  std::string path() const;

  /// Retains one pre-serialized round-event JSON object (the same string
  /// round_event_json produces); evicts the oldest past max_rounds.
  void record_round_event(const std::string& round_json);
  /// Retains one formatted log line; evicts the oldest past max_log_lines.
  void record_log_line(const std::string& line);

  /// Counts the degraded round and dumps immediately — a degraded quorum is
  /// exactly the moment post-mortem state is worth persisting.
  void note_quorum_degraded();

  /// Renders with `reason` and writes atomically (tmp + rename). Returns
  /// false when disabled or on I/O failure.
  bool dump(const char* reason);

  /// Installs SIGSEGV/SIGABRT handlers that write the stable pre-rendered
  /// buffer and then re-raise with the default disposition.
  void install_crash_handlers();

  /// Async-signal-safe: writes the last published buffer to path(). Public
  /// so the signal handler can reach it; not useful elsewhere.
  void crash_dump() noexcept;

 private:
  std::string render_locked(const char* reason) const;
  void publish_locked();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::string path_;
  std::size_t max_rounds_ = 32;
  std::size_t max_logs_ = 128;
  std::deque<std::string> rounds_;
  std::deque<std::string> logs_;
  std::uint64_t degraded_rounds_ = 0;
  // Crash-path double buffer: render into buffers_[1 - stable], then flip.
  std::string buffers_[2];
  std::atomic<int> stable_{-1};
};

}  // namespace haccs::obs
