// Trace spans: RAII wall-clock scopes exported as Chrome trace-event JSON.
//
// Usage at an instrumentation site:
//
//   { obs::Span span("local_train", "fl");  ... work ... }
//
// When tracing is disabled the constructor reads one relaxed atomic and
// returns — no clock read, no allocation. When enabled, the destructor
// records a completed event into a lock-sharded process-global buffer
// (shard chosen by thread id, so concurrent workers rarely contend on one
// mutex). The export is the Chrome trace-event format, loadable directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Cross-process correlation (DESIGN.md §5i): every active span carries a
// process-unique id and the id of the span that was open on the same thread
// when it started. The server publishes a per-round TraceContext (trace id,
// round span id, round index); workers receive it inside TrainJob frames,
// record their own spans parented under the server's round span, and ship
// them back as PortableTraceEvents. merged_chrome_json() stitches the
// server buffer and the returned worker shards into one timeline with one
// Chrome "process" track per worker.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace haccs::obs {

/// One completed span or instant marker. `name` and `category` must be
/// string literals (or otherwise outlive the buffer): the hot path records
/// the pointers, never a copy, to stay allocation-free per event payload.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;   ///< begin, nanoseconds since process start
  std::uint64_t dur_ns = 0;  ///< 0 for instants
  std::uint64_t span_id = 0;    ///< 0 for instants / untracked events
  std::uint64_t parent_id = 0;  ///< 0 = no enclosing span
  std::int64_t round = -1;      ///< federated round index; -1 = none
  bool instant = false;
};

/// Compact cross-process trace correlation token, carried as an optional
/// trailer on serving-plane messages. trace_id == 0 means "no context":
/// codecs skip the trailer entirely so flags-off wire bytes are unchanged.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;  ///< server-side round span id
  std::int64_t round = -1;
  bool valid() const { return trace_id != 0; }
};

/// Allocates a process-unique span id (never 0). Worker processes salt the
/// high bits (set_span_id_salt) so ids stay distinct in a merged trace.
std::uint64_t next_span_id();
void set_span_id_salt(std::uint64_t salt);

/// Id of the innermost active Span on this thread; 0 when none.
std::uint64_t current_span_id();

/// Stable nonzero id for this process's trace session (derived once from
/// the clock; no RNG draw, so tracing never perturbs seeded runs).
std::uint64_t process_trace_id();

/// Round context published by the engine while a round span is open; the
/// dispatcher snapshots it into outgoing TrainJob frames.
void set_round_context(const TraceContext& ctx);
void clear_round_context();
TraceContext round_context();

/// Lock-sharded span buffer. `global()` is the process buffer the Span RAII
/// path records into; worker loops additionally keep private instances for
/// the spans they ship back to the server.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  void record(const TraceEvent& event);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Chrome trace-event JSON: thread_name metadata ("M") records followed
  /// by complete ("X") and instant ("i") events, sorted by timestamp.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  std::array<Shard, kShards> shards_;
};

/// Wire/merge form of a TraceEvent: owns its strings, so it survives
/// crossing a process boundary where the literal pointers mean nothing.
struct PortableTraceEvent {
  std::string name;
  std::string category;
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::int64_t round = -1;
  bool instant = false;
};

PortableTraceEvent to_portable(const TraceEvent& event);

/// One worker's returned span shard(s), plus the clock offset that maps the
/// worker's ns-since-its-start timestamps onto the server's timeline
/// (server_now_at_receive - worker_send_ns; an upper bound that ignores
/// transit time, good enough for timeline alignment).
struct WorkerTrack {
  std::uint32_t worker_id = 0;
  std::string label;
  std::int64_t clock_offset_ns = 0;
  std::vector<PortableTraceEvent> events;
};

/// Single Chrome trace document: server events on pid 1, each worker on
/// pid 2 + worker_id with a process_name metadata record. Events with a
/// span id carry {"span","parent","round"} args for parent/child stitching.
std::string merged_chrome_json(const std::vector<TraceEvent>& server_events,
                               const std::vector<WorkerTrack>& workers);

/// RAII trace span. Construction and destruction are no-ops (one relaxed
/// atomic load each) while tracing is disabled.
class Span {
 public:
  explicit Span(const char* name, const char* category = "haccs");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Process-unique id of this span; 0 when tracing was disabled at
  /// construction.
  std::uint64_t id() const { return id_; }

 private:
  const char* name_;
  const char* category_;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  bool active_;
};

/// Records a zero-duration marker (fault events, rejections); no-op while
/// tracing is disabled.
void instant(const char* name, const char* category = "haccs");

}  // namespace haccs::obs
