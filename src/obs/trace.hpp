// Trace spans: RAII wall-clock scopes exported as Chrome trace-event JSON.
//
// Usage at an instrumentation site:
//
//   { obs::Span span("local_train", "fl");  ... work ... }
//
// When tracing is disabled the constructor reads one relaxed atomic and
// returns — no clock read, no allocation. When enabled, the destructor
// records a completed event into a lock-sharded process-global buffer
// (shard chosen by thread id, so concurrent workers rarely contend on one
// mutex). The export is the Chrome trace-event format, loadable directly in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace haccs::obs {

/// One completed span or instant marker. `name` and `category` must be
/// string literals (or otherwise outlive the buffer): the hot path records
/// the pointers, never a copy, to stay allocation-free per event payload.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;   ///< begin, nanoseconds since process start
  std::uint64_t dur_ns = 0;  ///< 0 for instants
  bool instant = false;
};

/// Lock-sharded process-global span buffer.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  void record(const TraceEvent& event);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Chrome trace-event JSON: thread_name metadata ("M") records followed
  /// by complete ("X") and instant ("i") events, sorted by timestamp.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  std::array<Shard, kShards> shards_;
};

/// RAII trace span. Construction and destruction are no-ops (one relaxed
/// atomic load each) while tracing is disabled.
class Span {
 public:
  explicit Span(const char* name, const char* category = "haccs");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t begin_ns_ = 0;
  bool active_;
};

/// Records a zero-duration marker (fault events, rejections); no-op while
/// tracing is disabled.
void instant(const char* name, const char* category = "haccs");

}  // namespace haccs::obs
