#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/obs/obs.hpp"

namespace haccs::obs {

void Counter::inc(std::uint64_t n) {
  if (!metrics_enabled()) return;
  value_.fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double v) {
  if (!metrics_enabled()) return;
  value_.store(v, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted");
  }
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> via CAS: portable back to C++17 compilers.
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_ms_buckets() {
  static const std::vector<double> buckets = {
      0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 60000};
  return buckets;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds.empty() ? default_ms_buckets()
                                                      : bounds);
  }
  return *slot;
}

std::string Registry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + json_number(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{\"bounds\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += json_number(bounds[i]);
    }
    out += "],\"counts\":[";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(counts[i]);
    }
    out += "],\"sum\":" + json_number(h->sum()) +
           ",\"count\":" + std::to_string(h->count()) + '}';
  }
  out += "}}";
  return out;
}

std::string Registry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  // Metric names come from instrumentation sites and are already
  // identifier-shaped; sanitize defensively anyway, since Prometheus text
  // has no escaping for names.
  const auto sane = [](const std::string& name) {
    std::string fixed = name;
    for (char& c : fixed) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) c = '_';
    }
    return fixed;
  };
  for (const auto& [name, c] : counters_) {
    const std::string full = "haccs_" + sane(name);
    out += "# TYPE " + full + " counter\n";
    out += full + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string full = "haccs_" + sane(name);
    out += "# TYPE " + full + " gauge\n";
    out += full + " " + json_number(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string full = "haccs_" + sane(name);
    out += "# TYPE " + full + " histogram\n";
    const auto& bounds = h->bounds();
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += full + "_bucket{le=\"" + json_number(bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += counts.back();
    out += full + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += full + "_sum " + json_number(h->sum()) + "\n";
    out += full + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

bool Registry::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace haccs::obs
