// Process-wide observability switchboard (DESIGN.md §5e).
//
// Three pillars, each independently enabled at runtime:
//   * trace spans     (trace.hpp)   — RAII scopes exported as Chrome
//                                     trace-event JSON (Perfetto-loadable);
//   * metrics         (metrics.hpp) — named counters / gauges / histograms,
//                                     snapshotable to JSON;
//   * run events      (events.hpp)  — structured JSONL, one record per
//                                     training round.
//
// Every hot-path entry point checks one relaxed atomic flag before touching
// a clock or allocating, so a run with telemetry off pays one predictable
// branch per site. Nothing in this subsystem ever consumes RNG state, which
// is what keeps selector output byte-identical with the pillars on or off
// (pinned by ObsEngine.TracedRunMatchesUntraced).
//
// haccs_obs is the base-most library in the build: it depends on nothing
// else in the repo, so even haccs_common (thread pool, logging) can be
// instrumented without a dependency cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace haccs::obs {

/// Per-pillar enable flags (process-global, relaxed atomics).
bool trace_enabled();
void set_trace_enabled(bool on);
bool metrics_enabled();
void set_metrics_enabled(bool on);
/// True while a RunEventLog sink is open (events.hpp manages this flag).
bool events_enabled();

/// True when any pillar needs wall-clock readings; phase timers check this
/// once instead of three flags.
bool timing_enabled();

/// Monotonic nanoseconds since the first observability call in the process
/// (steady clock — immune to wall-clock adjustments).
std::uint64_t now_ns();

/// Small dense id for the calling thread (0 = first thread observed, which
/// is normally main). Cached in a thread_local after the first call.
std::uint32_t thread_id();

/// Names the calling thread in trace exports (e.g. "worker-3"); unnamed
/// threads export as "thread-<id>" ("main" for id 0).
void set_thread_name(const std::string& name);
std::string thread_name(std::uint32_t tid);
std::uint32_t thread_count();

/// Wall-clock phase timer. Reads the clock only when timing_enabled() was
/// true at construction; lap_ms() returns 0 otherwise, so disabled runs pay
/// a single branch per lap.
class StopWatch {
 public:
  StopWatch();
  /// Milliseconds since construction or the previous lap.
  double lap_ms();

 private:
  bool active_;
  std::uint64_t last_ = 0;
};

// ---------------------------------------------------------------------------
// Minimal JSON emission (shared by all three pillars and the tool summaries;
// no parser, no DOM — just correctly escaped text).

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number ("null" for NaN/Inf, which JSON cannot
/// represent).
std::string json_number(double v);

/// Serializes indices as a JSON array, e.g. "[3,1,4]".
std::string json_array(const std::vector<std::size_t>& values);

/// Incremental JSON object builder for flat-ish records (run events, bench
/// summaries). Fields are emitted in insertion order; keys are taken as-is
/// (callers use literal identifiers, no escaping needed).
class JsonObject {
 public:
  JsonObject& field(const char* key, double value);
  JsonObject& field(const char* key, bool value);
  JsonObject& field(const char* key, const char* value);
  JsonObject& field(const char* key, const std::string& value);
  template <typename T>
    requires std::is_integral_v<T>
  JsonObject& field(const char* key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return int_field(key, static_cast<long long>(value));
    } else {
      return uint_field(key, static_cast<unsigned long long>(value));
    }
  }
  /// Embeds pre-serialized JSON (arrays, nested objects) verbatim.
  JsonObject& field_raw(const char* key, const std::string& json);

  /// The completed object, braces included.
  std::string str() const;

 private:
  JsonObject& int_field(const char* key, long long value);
  JsonObject& uint_field(const char* key, unsigned long long value);
  void begin_field(const char* key);
  std::string body_;
};

// ---------------------------------------------------------------------------
// One-call wiring for tools and benches.

/// Artifact destinations; an empty path leaves that pillar disabled.
struct Options {
  std::string trace_path;    ///< Chrome trace-event JSON
  std::string metrics_path;  ///< metrics registry snapshot JSON
  std::string events_path;   ///< structured run events JSONL
};

/// Enables each pillar whose path is non-empty (and disables the rest),
/// opens the events sink, and registers a one-time atexit flush — so every
/// binary that parses --trace/--metrics/--events emits artifacts without
/// touching its main(). Throws std::runtime_error if a sink cannot be
/// opened.
void configure(const Options& options);

/// Writes the configured trace/metrics artifacts and flushes the events
/// sink. Idempotent until the next configure(); safe to call with nothing
/// configured.
void flush();

}  // namespace haccs::obs
