#include "src/obs/events.hpp"

namespace haccs::obs {

RunEventLog& RunEventLog::global() {
  static RunEventLog log;
  return log;
}

RunEventLog::~RunEventLog() { close(); }

bool RunEventLog::open(const std::string& path) {
  std::lock_guard lock(mutex_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
    open_.store(false, std::memory_order_relaxed);
  }
  file_ = std::fopen(path.c_str(), "w");
  open_.store(file_ != nullptr, std::memory_order_relaxed);
  return file_ != nullptr;
}

void RunEventLog::emit(const std::string& json_object) {
  if (!is_open()) return;
  std::lock_guard lock(mutex_);
  if (!file_) return;
  std::fwrite(json_object.data(), 1, json_object.size(), file_);
  std::fputc('\n', file_);
}

void RunEventLog::flush() {
  std::lock_guard lock(mutex_);
  if (file_) std::fflush(file_);
}

void RunEventLog::close() {
  std::lock_guard lock(mutex_);
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  open_.store(false, std::memory_order_relaxed);
}

}  // namespace haccs::obs
