#include "src/obs/obs.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "src/obs/events.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace haccs::obs {

namespace {

std::atomic<bool> g_trace{false};
std::atomic<bool> g_metrics{false};

// Thread registry: dense ids + optional names, shared by trace export and
// the logging prefix. Ids are handed out on first contact, so id 0 is
// whichever thread touches observability first (normally main).
std::mutex g_thread_mutex;
std::vector<std::string> g_thread_names;
std::atomic<std::uint32_t> g_thread_count{0};

std::uint32_t register_thread() {
  std::lock_guard lock(g_thread_mutex);
  const auto id = static_cast<std::uint32_t>(g_thread_names.size());
  g_thread_names.emplace_back();
  g_thread_count.store(static_cast<std::uint32_t>(g_thread_names.size()),
                       std::memory_order_relaxed);
  return id;
}

thread_local std::uint32_t t_thread_id = register_thread();

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Process-start anchor so trace timestamps start near zero.
const std::uint64_t g_epoch_ns = steady_now_ns();

// Artifact destinations set by configure(); written by flush().
std::mutex g_configure_mutex;
Options g_options;
bool g_flushed = false;
bool g_atexit_registered = false;

}  // namespace

bool trace_enabled() { return g_trace.load(std::memory_order_relaxed); }
void set_trace_enabled(bool on) {
  g_trace.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() { return g_metrics.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool on) {
  g_metrics.store(on, std::memory_order_relaxed);
}

bool events_enabled() { return RunEventLog::global().is_open(); }

bool timing_enabled() {
  return trace_enabled() || metrics_enabled() || events_enabled();
}

std::uint64_t now_ns() { return steady_now_ns() - g_epoch_ns; }

std::uint32_t thread_id() { return t_thread_id; }

void set_thread_name(const std::string& name) {
  const std::uint32_t id = thread_id();
  std::lock_guard lock(g_thread_mutex);
  g_thread_names[id] = name;
}

std::string thread_name(std::uint32_t tid) {
  {
    std::lock_guard lock(g_thread_mutex);
    if (tid < g_thread_names.size() && !g_thread_names[tid].empty()) {
      return g_thread_names[tid];
    }
  }
  return tid == 0 ? "main" : "thread-" + std::to_string(tid);
}

std::uint32_t thread_count() {
  return g_thread_count.load(std::memory_order_relaxed);
}

StopWatch::StopWatch() : active_(timing_enabled()) {
  if (active_) last_ = steady_now_ns();
}

double StopWatch::lap_ms() {
  if (!active_) return 0.0;
  const std::uint64_t now = steady_now_ns();
  const double ms = static_cast<double>(now - last_) * 1e-6;
  last_ = now;
  return ms;
}

// ---------------------------------------------------------------------------
// JSON emission

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "null";  // NaN / Inf are not representable in JSON
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_array(const std::vector<std::size_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

void JsonObject::begin_field(const char* key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":";
}

JsonObject& JsonObject::field(const char* key, double value) {
  begin_field(key);
  body_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::field(const char* key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::field(const char* key, const char* value) {
  return field(key, std::string(value));
}

JsonObject& JsonObject::field(const char* key, const std::string& value) {
  begin_field(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::int_field(const char* key, long long value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::uint_field(const char* key, unsigned long long value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field_raw(const char* key, const std::string& json) {
  begin_field(key);
  body_ += json;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

// ---------------------------------------------------------------------------
// configure / flush

void configure(const Options& options) {
  // Touch every singleton before the atexit registration below: atexit
  // callbacks run before the destructors of statics constructed earlier, so
  // the flush at exit always sees live sinks.
  TraceBuffer::global();
  Registry::global();
  RunEventLog& events = RunEventLog::global();

  std::lock_guard lock(g_configure_mutex);
  g_options = options;
  g_flushed = false;
  set_trace_enabled(!options.trace_path.empty());
  set_metrics_enabled(!options.metrics_path.empty());
  if (options.events_path.empty()) {
    events.close();
  } else {
    events.open(options.events_path);
  }
  const bool any = !options.trace_path.empty() ||
                   !options.metrics_path.empty() ||
                   !options.events_path.empty();
  if (any && !g_atexit_registered) {
    g_atexit_registered = true;
    std::atexit([] { flush(); });
  }
}

void flush() {
  Options options;
  {
    std::lock_guard lock(g_configure_mutex);
    if (g_flushed) return;
    g_flushed = true;
    options = g_options;
  }
  if (!options.trace_path.empty()) {
    TraceBuffer::global().write(options.trace_path);
    std::fprintf(stderr, "wrote trace to %s\n", options.trace_path.c_str());
  }
  if (!options.metrics_path.empty()) {
    Registry::global().write(options.metrics_path);
    std::fprintf(stderr, "wrote metrics to %s\n", options.metrics_path.c_str());
  }
  RunEventLog::global().flush();
}

}  // namespace haccs::obs
