// Structured run events: a JSONL sink, one self-contained JSON object per
// line, written as training progresses.
//
// Both engines emit one "round" record per aggregation (full RoundRecord
// fields plus per-phase wall timings — see fl::round_event_json), so a run
// can be replayed offline: jq/python can reconstruct the accuracy curve,
// waste accounting, and phase breakdown without re-running anything.
// Emission is gated on is_open(): with no sink configured, sites pay one
// relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace haccs::obs {

class RunEventLog {
 public:
  static RunEventLog& global();
  ~RunEventLog();

  /// Opens (truncates) the JSONL sink and enables emission. Returns false —
  /// leaving events disabled — if the file cannot be created.
  bool open(const std::string& path);

  bool is_open() const { return open_.load(std::memory_order_relaxed); }

  /// Writes one pre-serialized JSON object as a line. No-op while closed.
  void emit(const std::string& json_object);

  void flush();
  void close();

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::atomic<bool> open_{false};
};

}  // namespace haccs::obs
