#include "src/scale/scale.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "src/common/rng.hpp"
#include "src/common/threadpool.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/stats/sketch.hpp"

namespace haccs::scale {

namespace {

obs::Counter& candidate_pairs_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("scale_candidate_pairs_total");
  return c;
}

obs::Counter& exact_distances_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("scale_exact_distances_total");
  return c;
}

}  // namespace

SketchMatrix::SketchMatrix(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("SketchMatrix: dim == 0");
}

std::size_t SketchMatrix::append(std::span<const float> values) {
  if (values.size() != dim_) {
    throw std::invalid_argument("SketchMatrix::append: wrong row width");
  }
  const std::size_t id = rows();
  data_.insert(data_.end(), values.begin(), values.end());
  return id;
}

void SketchMatrix::assign_row(std::size_t i, std::span<const float> values) {
  if (i >= rows()) throw std::out_of_range("SketchMatrix::assign_row");
  if (values.size() != dim_) {
    throw std::invalid_argument("SketchMatrix::assign_row: wrong row width");
  }
  std::copy(values.begin(), values.end(), data_.begin() + i * dim_);
}

double sketch_distance(const SketchMatrix& sketches, std::size_t i,
                       std::size_t j) {
  return stats::hellinger_from_embeddings(sketches.row(i), sketches.row(j));
}

void ScaleStats::accumulate(const ScaleStats& other) {
  candidate_pairs += other.candidate_pairs;
  exact_distances += other.exact_distances;
  shards += other.shards;
  merge_inputs += other.merge_inputs;
}

clustering::SparseNeighborGraph build_candidate_graph(
    const SketchMatrix& sketches, std::span<const std::size_t> members,
    const ExactDistanceFn& exact, const ScaleConfig& config,
    ScaleStats* stats) {
  const std::size_t m = members.size();
  const std::size_t dim = sketches.dim();
  const std::size_t tables = std::max<std::size_t>(1, config.lsh_tables);
  const std::size_t bits =
      std::min<std::size_t>(63, std::max<std::size_t>(1, config.lsh_bits));

  // Candidate generation: per table, hash every member to a sign-bit key
  // over `bits` random hyperplanes, sort by key, and pair within buckets.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::pair<std::uint64_t, std::size_t>> keyed(m);
  std::vector<double> planes(bits * dim);
  for (std::size_t t = 0; t < tables; ++t) {
    Rng rng(SplitMix64(config.seed ^ ((t + 1) * 0x9e3779b97f4a7c15ULL)).next());
    for (double& p : planes) p = rng.normal();
    parallel_for(0, m, [&](std::size_t i) {
      const auto row = sketches.row(members[i]);
      std::uint64_t key = 0;
      for (std::size_t b = 0; b < bits; ++b) {
        const double* plane = planes.data() + b * dim;
        double dot = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          dot += plane[d] * static_cast<double>(row[d]);
        }
        if (dot > 0.0) key |= (std::uint64_t{1} << b);
      }
      keyed[i] = {key, i};
    });
    std::sort(keyed.begin(), keyed.end());
    std::size_t lo = 0;
    while (lo < m) {
      std::size_t hi = lo + 1;
      while (hi < m && keyed[hi].first == keyed[lo].first) ++hi;
      const std::size_t bucket = hi - lo;
      if (bucket <= config.max_bucket) {
        for (std::size_t a = lo; a < hi; ++a) {
          for (std::size_t b = a + 1; b < hi; ++b) {
            pairs.emplace_back(std::min(keyed[a].second, keyed[b].second),
                               std::max(keyed[a].second, keyed[b].second));
          }
        }
      } else {
        // Oversized bucket (sketches collapsed onto one key): connect each
        // point to a bounded window of successors instead of all pairs.
        const std::size_t window = std::max<std::size_t>(1, config.bucket_window);
        for (std::size_t a = lo; a < hi; ++a) {
          for (std::size_t b = a + 1; b < std::min(hi, a + 1 + window); ++b) {
            pairs.emplace_back(std::min(keyed[a].second, keyed[b].second),
                               std::max(keyed[a].second, keyed[b].second));
          }
        }
      }
      lo = hi;
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  // Only the surviving candidates pay for an exact Hellinger evaluation.
  std::vector<double> dists(pairs.size());
  parallel_for(0, pairs.size(), [&](std::size_t p) {
    dists[p] = exact(members[pairs[p].first], members[pairs[p].second]);
  });

  clustering::SparseNeighborGraph graph(m);
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    graph.add_edge(pairs[p].first, pairs[p].second, dists[p]);
  }
  graph.finalize();
  std::vector<std::size_t> owned(members.begin(), members.end());
  graph.set_estimator(
      [&sketches, owned = std::move(owned)](std::size_t i, std::size_t j) {
        return sketch_distance(sketches, owned[i], owned[j]);
      });

  candidate_pairs_counter().inc(pairs.size());
  exact_distances_counter().inc(pairs.size());
  if (stats != nullptr) {
    stats->candidate_pairs += pairs.size();
    stats->exact_distances += pairs.size();
  }
  return graph;
}

std::vector<int> cluster_shard(const SketchMatrix& sketches,
                               std::span<const std::size_t> members,
                               const ExactDistanceFn& exact,
                               const ClusterFn& cluster,
                               const ScaleConfig& config, ScaleStats* stats) {
  obs::Span span("shard_cluster", "clustering");
  const std::size_t m = members.size();
  if (m == 0) return {};
  if (m <= config.exact_cutoff) {
    auto matrix = clustering::DistanceMatrix::build(
        m, [&](std::size_t i, std::size_t j) {
          return exact(members[i], members[j]);
        });
    const std::size_t evals = m * (m - 1) / 2;
    exact_distances_counter().inc(evals);
    if (stats != nullptr) stats->exact_distances += evals;
    return cluster(clustering::DenseNeighborIndex(matrix));
  }
  auto graph = build_candidate_graph(sketches, members, exact, config, stats);
  return cluster(graph);
}

std::vector<int> merge_shards(const SketchMatrix& sketches,
                              std::span<const ShardClustering> shards,
                              const ClusterFn& cluster,
                              const ScaleConfig& config, ScaleStats* stats) {
  obs::Span span("shard_merge", "clustering");
  std::vector<int> global(sketches.rows(), -1);

  std::vector<std::size_t> populated;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].members.size() != shards[s].labels.size()) {
      throw std::invalid_argument("merge_shards: members/labels misaligned");
    }
    if (!shards[s].members.empty()) populated.push_back(s);
  }
  if (populated.empty()) return global;

  // Identity merge: one populated shard's local labels are already global.
  if (populated.size() == 1) {
    const auto& shard = shards[populated.front()];
    for (std::size_t i = 0; i < shard.members.size(); ++i) {
      global[shard.members[i]] = shard.labels[i];
    }
    return global;
  }

  // One representative per (shard, local cluster): the sketch centroid of
  // its members. rep_row[s][l] is the representative's row id.
  SketchMatrix reps(sketches.dim());
  std::vector<std::vector<int>> rep_row(shards.size());
  std::size_t total_members = 0;
  std::vector<double> sum(sketches.dim());
  std::vector<float> centroid(sketches.dim());
  for (std::size_t s : populated) {
    const auto& shard = shards[s];
    total_members += shard.members.size();
    int local_clusters = 0;
    for (int label : shard.labels) {
      local_clusters = std::max(local_clusters, label + 1);
    }
    rep_row[s].assign(static_cast<std::size_t>(local_clusters), -1);
    for (int c = 0; c < local_clusters; ++c) {
      std::fill(sum.begin(), sum.end(), 0.0);
      std::size_t count = 0;
      for (std::size_t i = 0; i < shard.members.size(); ++i) {
        if (shard.labels[i] != c) continue;
        const auto row = sketches.row(shard.members[i]);
        for (std::size_t d = 0; d < sum.size(); ++d) sum[d] += row[d];
        ++count;
      }
      if (count == 0) continue;  // label gap: no members carry this id
      for (std::size_t d = 0; d < sum.size(); ++d) {
        centroid[d] = static_cast<float>(sum[d] / static_cast<double>(count));
      }
      rep_row[s][static_cast<std::size_t>(c)] =
          static_cast<int>(reps.append(centroid));
    }
  }
  if (stats != nullptr) stats->merge_inputs += reps.rows();
  if (reps.rows() == 0) return global;

  // Cluster the representatives in sketch space. Recursion through
  // cluster_sharded handles a representative set too large for a dense
  // matrix; it terminates because density clustering with min_pts >= 2
  // yields at most members/2 clusters per level (guarded explicitly for
  // pathological ClusterFns that don't shrink).
  std::vector<int> rep_labels;
  if (reps.rows() == 1) {
    rep_labels.assign(1, 0);
  } else if (reps.rows() > config.shard_size && reps.rows() < total_members) {
    rep_labels = cluster_sharded(
        reps,
        [&reps](std::size_t i, std::size_t j) {
          return sketch_distance(reps, i, j);
        },
        cluster, config, stats);
  } else {
    auto matrix = clustering::DistanceMatrix::build(
        reps.rows(), [&reps](std::size_t i, std::size_t j) {
          return sketch_distance(reps, i, j);
        });
    rep_labels = cluster(clustering::DenseNeighborIndex(matrix));
  }

  // A representative the merge calls noise keeps its own global cluster.
  int next_label = 0;
  for (int label : rep_labels) next_label = std::max(next_label, label + 1);
  for (int& label : rep_labels) {
    if (label < 0) label = next_label++;
  }

  for (std::size_t s : populated) {
    const auto& shard = shards[s];
    for (std::size_t i = 0; i < shard.members.size(); ++i) {
      const int local = shard.labels[i];
      if (local < 0) continue;  // shard-local noise stays global noise
      const int rep = rep_row[s][static_cast<std::size_t>(local)];
      global[shard.members[i]] = rep_labels[static_cast<std::size_t>(rep)];
    }
  }
  return global;
}

std::vector<int> cluster_sharded(const SketchMatrix& sketches,
                                 const ExactDistanceFn& exact,
                                 const ClusterFn& cluster,
                                 const ScaleConfig& config,
                                 ScaleStats* stats, ThreadPool* pool) {
  const std::size_t n = sketches.rows();
  if (n == 0) return {};
  const std::size_t shard_size = std::max<std::size_t>(1, config.shard_size);
  const std::size_t num_shards = (n + shard_size - 1) / shard_size;

  std::vector<ShardClustering> shards(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t lo = s * shard_size;
    const std::size_t hi = std::min(n, lo + shard_size);
    shards[s].members.resize(hi - lo);
    std::iota(shards[s].members.begin(), shards[s].members.end(), lo);
  }

  // Shards are independent; per-shard stats avoid racing on one struct.
  // Nested parallelism inside cluster_shard (DistanceMatrix::build,
  // candidate hashing) runs inline on pool workers.
  std::vector<ScaleStats> per_shard(num_shards);
  const auto shard_task = [&](std::size_t s) {
    shards[s].labels =
        cluster_shard(sketches, shards[s].members, exact, cluster, config,
                      stats != nullptr ? &per_shard[s] : nullptr);
  };
  if (pool != nullptr) {
    parallel_for(*pool, 0, num_shards, shard_task);
  } else {
    parallel_for(0, num_shards, shard_task);
  }
  if (stats != nullptr) {
    stats->shards += num_shards;
    for (const auto& ps : per_shard) stats->accumulate(ps);
  }
  return merge_shards(sketches, shards, cluster, config, stats);
}

}  // namespace haccs::scale
