// Million-client selection pipeline: sketch → ANN-prune → shard → merge.
//
// The exact HACCS server computes all N² pairwise Hellinger distances and
// clusters them in one piece — fine at thousands of clients, hopeless at a
// million. This layer keeps the same clustering semantics while bounding
// every super-linear cost:
//
//   1. Clients are represented by fixed-width sketch embeddings
//      (stats/sketch.hpp): √-probability vectors, signed-hash-projected when
//      the native dimension exceeds the budget. Sketch-space L2 / √2 is a
//      bounded-error Hellinger estimate, exact in the unprojected case.
//   2. Within a shard too large for a dense matrix, LSH over the sketch
//      space proposes candidate pairs; only candidates get an *exact*
//      Hellinger evaluation. The result is a SparseNeighborGraph that
//      OPTICS/DBSCAN consume through the NeighborIndex seam, with the
//      sketch estimate answering distance() for pruned pairs.
//   3. Clients are clustered in shards of `shard_size` (parallel, O(shard²)
//      memory each), then shard-clusters are merged by clustering their
//      sketch centroids — recursively through the same machinery if even
//      the representative set is too large.
//
// Layering: scale depends on clustering + stats only. It never sees client
// summaries or HaccsConfig — the caller supplies an exact-distance callback
// over global row ids and a clustering callback over a NeighborIndex, so
// core/pipeline owns all policy (which algorithm, which eps) and scale owns
// only the orchestration.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "src/clustering/neighbor_index.hpp"
#include "src/scale/scale_config.hpp"

namespace haccs {
class ThreadPool;
}

namespace haccs::scale {

/// Flat row-major matrix of sketch embeddings, one fixed-width row per
/// client. Row ids are the global client indices used throughout this layer.
class SketchMatrix {
 public:
  explicit SketchMatrix(std::size_t dim);

  std::size_t dim() const { return dim_; }
  std::size_t rows() const { return data_.size() / dim_; }
  std::span<const float> row(std::size_t i) const {
    return {data_.data() + i * dim_, dim_};
  }

  /// Appends a row (must have exactly dim() entries); returns its row id.
  std::size_t append(std::span<const float> values);
  /// Overwrites row `i` in place.
  void assign_row(std::size_t i, std::span<const float> values);
  void reserve(std::size_t rows) { data_.reserve(rows * dim_); }

 private:
  std::size_t dim_;
  std::vector<float> data_;
};

/// Sketch-space Hellinger estimate between two rows.
double sketch_distance(const SketchMatrix& sketches, std::size_t i,
                       std::size_t j);

/// Exact distance between two clients, keyed by global row id. Supplied by
/// the caller (core computes Hellinger over the full summaries).
using ExactDistanceFn = std::function<double(std::size_t, std::size_t)>;

/// Density clustering over a neighbor index → labels (noise = -1). Supplied
/// by the caller so scale stays policy-free (core wraps OPTICS/DBSCAN with
/// its configured parameters).
using ClusterFn =
    std::function<std::vector<int>(const clustering::NeighborIndex&)>;

/// Work accounting for one pipeline invocation (also exported as process
/// counters scale_candidate_pairs_total / scale_exact_distances_total).
struct ScaleStats {
  std::size_t candidate_pairs = 0;   ///< pairs proposed by LSH
  std::size_t exact_distances = 0;   ///< exact Hellinger evaluations
  std::size_t shards = 0;            ///< shards clustered
  std::size_t merge_inputs = 0;      ///< shard-cluster representatives merged

  void accumulate(const ScaleStats& other);
};

/// LSH candidate graph over `members` (local node ids are positions in
/// `members`; global ids index `sketches` and `exact`). Candidate pairs get
/// exact distances as graph edges; the graph's estimator answers pruned
/// pairs with the sketch estimate.
clustering::SparseNeighborGraph build_candidate_graph(
    const SketchMatrix& sketches, std::span<const std::size_t> members,
    const ExactDistanceFn& exact, const ScaleConfig& config,
    ScaleStats* stats = nullptr);

/// Clusters one shard: a dense exact matrix at or below
/// config.exact_cutoff members, the ANN candidate graph above it. Returns
/// local labels aligned with `members` (noise = -1).
std::vector<int> cluster_shard(const SketchMatrix& sketches,
                               std::span<const std::size_t> members,
                               const ExactDistanceFn& exact,
                               const ClusterFn& cluster,
                               const ScaleConfig& config,
                               ScaleStats* stats = nullptr);

/// One shard's membership and its local clustering.
struct ShardClustering {
  std::vector<std::size_t> members;  ///< global row ids
  std::vector<int> labels;           ///< aligned with members; noise = -1
};

/// Cluster-of-clusters merge: each (shard, local cluster) is represented by
/// its sketch centroid; representatives are clustered (recursively through
/// cluster_sharded if there are more than config.shard_size of them) and
/// members inherit their representative's merged label. A single non-empty
/// shard is an identity merge. Shard-local noise stays global noise; a
/// representative the merge marks noise keeps its own global cluster (a
/// shard cluster is real evidence of density — an unmergeable one should
/// not demote its members).
///
/// Returns global labels indexed by row id (size sketches.rows()); rows not
/// in any shard get -1.
std::vector<int> merge_shards(const SketchMatrix& sketches,
                              std::span<const ShardClustering> shards,
                              const ClusterFn& cluster,
                              const ScaleConfig& config,
                              ScaleStats* stats = nullptr);

/// The full batch pipeline: chunk rows into contiguous shards of
/// config.shard_size, cluster each in parallel, merge. Equivalent to the
/// exact path when one shard covers everything and fits the exact cutoff
/// (pinned by the differential oracle in src/testing). `pool` overrides the
/// thread pool the per-shard fan-out runs on (null = the process-global
/// pool) — the bench thread sweep sizes it explicitly; results are
/// identical at any width, shards being independent.
std::vector<int> cluster_sharded(const SketchMatrix& sketches,
                                 const ExactDistanceFn& exact,
                                 const ClusterFn& cluster,
                                 const ScaleConfig& config,
                                 ScaleStats* stats = nullptr,
                                 ThreadPool* pool = nullptr);

}  // namespace haccs::scale
