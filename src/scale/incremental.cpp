#include "src/scale/incremental.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/common/threadpool.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/stats/sketch.hpp"

namespace haccs::scale {

namespace {

obs::Counter& reclusters_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("scale_incremental_reclusters_total");
  return c;
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(std::size_t sketch_dim,
                                           ExactDistanceFn exact,
                                           ClusterFn cluster,
                                           ScaleConfig config)
    : exact_(std::move(exact)),
      cluster_(std::move(cluster)),
      config_(std::move(config)),
      sketches_(sketch_dim) {}

std::size_t IncrementalClusterer::add_client(std::span<const float> sketch) {
  std::size_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    sketches_.assign_row(id, sketch);
  } else {
    id = sketches_.append(sketch);
    alive_.push_back(false);
    shard_of_.push_back(0);
    labels_.push_back(-1);
  }
  alive_[id] = true;

  const std::size_t shard_size =
      std::max<std::size_t>(1, config_.shard_size);
  if (shards_.empty() || shards_.back().members.size() >= shard_size) {
    shards_.emplace_back();
    shard_dirty_.push_back(false);
  }
  const std::size_t shard = shards_.size() - 1;
  shards_[shard].members.push_back(id);
  shard_of_[id] = shard;
  shard_dirty_[shard] = true;

  assign_interim(id);
  ++live_;
  ++dirty_ops_;
  return id;
}

void IncrementalClusterer::remove_client(std::size_t id) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalClusterer: id not live");
  }
  auto& shard = shards_[shard_of_[id]];
  const auto it =
      std::find(shard.members.begin(), shard.members.end(), id);
  const std::size_t pos =
      static_cast<std::size_t>(it - shard.members.begin());
  shard.members.erase(it);
  if (shard.labels.size() > pos) {
    shard.labels.erase(shard.labels.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  shard_dirty_[shard_of_[id]] = true;

  alive_[id] = false;
  labels_[id] = -1;
  free_.push_back(id);
  --live_;
  ++dirty_ops_;
}

void IncrementalClusterer::update_client(std::size_t id,
                                         std::span<const float> sketch) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalClusterer: id not live");
  }
  sketches_.assign_row(id, sketch);
  shard_dirty_[shard_of_[id]] = true;
  assign_interim(id);
  ++dirty_ops_;
}

int IncrementalClusterer::label_of(std::size_t id) const {
  return alive(id) ? labels_[id] : -1;
}

double IncrementalClusterer::dirty_fraction() const {
  return static_cast<double>(dirty_ops_) /
         static_cast<double>(std::max<std::size_t>(1, live_));
}

bool IncrementalClusterer::recompute_if_dirty() {
  if (dirty_ops_ == 0) return false;
  if (dirty_fraction() < config_.dirty_threshold) return false;
  recompute();
  return true;
}

void IncrementalClusterer::recompute() {
  obs::Span span("incremental_recompute", "clustering");
  reclusters_counter().inc();

  // Compact away shards churn emptied, so shard count tracks the live
  // population instead of the join history.
  std::size_t kept = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].members.empty()) continue;
    if (kept != s) {
      shards_[kept] = std::move(shards_[s]);
      shard_dirty_[kept] = shard_dirty_[s];
    }
    for (std::size_t id : shards_[kept].members) shard_of_[id] = kept;
    ++kept;
  }
  shards_.resize(kept);
  shard_dirty_.resize(kept);

  std::vector<std::size_t> dirty;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_dirty_[s]) dirty.push_back(s);
  }
  std::vector<ScaleStats> per_shard(dirty.size());
  parallel_for(0, dirty.size(), [&](std::size_t i) {
    auto& shard = shards_[dirty[i]];
    shard.labels = cluster_shard(sketches_, shard.members, exact_, cluster_,
                                 config_, &per_shard[i]);
  });
  for (std::size_t s : dirty) shard_dirty_[s] = false;
  stats_.shards += dirty.size();
  for (const auto& ps : per_shard) stats_.accumulate(ps);

  ScaleStats merge_stats;
  labels_ = merge_shards(sketches_, shards_, cluster_, config_, &merge_stats);
  stats_.accumulate(merge_stats);

  // Refresh cluster centroids for the cheap interim-assignment path.
  int clusters = 0;
  for (int label : labels_) clusters = std::max(clusters, label + 1);
  centroids_.assign(static_cast<std::size_t>(clusters),
                    std::vector<float>(sketches_.dim(), 0.0f));
  std::vector<std::size_t> counts(static_cast<std::size_t>(clusters), 0);
  std::vector<std::vector<double>> sums(
      static_cast<std::size_t>(clusters),
      std::vector<double>(sketches_.dim(), 0.0));
  for (const auto& shard : shards_) {
    for (std::size_t id : shard.members) {
      const int label = labels_[id];
      if (label < 0) continue;
      const auto row = sketches_.row(id);
      auto& sum = sums[static_cast<std::size_t>(label)];
      for (std::size_t d = 0; d < sum.size(); ++d) sum[d] += row[d];
      ++counts[static_cast<std::size_t>(label)];
    }
  }
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t d = 0; d < centroids_[c].size(); ++d) {
      centroids_[c][d] =
          static_cast<float>(sums[c][d] / static_cast<double>(counts[c]));
    }
  }
  dirty_ops_ = 0;
}

void IncrementalClusterer::rebuild() {
  std::fill(shard_dirty_.begin(), shard_dirty_.end(), true);
  recompute();
}

void IncrementalClusterer::assign_interim(std::size_t id) {
  const auto row = sketches_.row(id);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_cluster = 0;
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = stats::hellinger_from_embeddings(
        row, std::span<const float>(centroids_[c]));
    if (d < best) {
      best = d;
      best_cluster = c;
    }
  }
  if (best <= config_.assign_radius) {
    labels_[id] = static_cast<int>(best_cluster);
    return;
  }
  labels_[id] = static_cast<int>(centroids_.size());
  centroids_.emplace_back(row.begin(), row.end());
}

}  // namespace haccs::scale
