// Configuration for the million-client selection pipeline (DESIGN.md §5h).
//
// Kept header-only and dependency-free so core::HaccsConfig can embed it
// without pulling the scale machinery into every translation unit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace haccs::scale {

struct ScaleConfig {
  /// Master runtime toggle. Off (the default) keeps the exact O(N²)
  /// summary → Hellinger → OPTICS path byte-identical to the pre-scale
  /// implementation; on routes clustering through sketches, ANN candidate
  /// pruning, sharding, and the cluster-of-clusters merge.
  bool enabled = false;

  /// Maximum clients clustered together in one shard. Distance work and
  /// memory are O(shard_size²) worst case per shard, never O(N²).
  std::size_t shard_size = 1024;

  /// Sketch embedding budget (floats per client). Native embeddings at or
  /// below this dimension are stored unprojected, making the sketch-space
  /// Hellinger estimate exact for P(y) summaries with ≤ sketch_dim classes.
  std::size_t sketch_dim = 32;

  /// Shards at or below this size skip ANN pruning and build the dense
  /// exact distance matrix (the pruning bookkeeping costs more than it
  /// saves on small inputs — and it makes tier-1-sized scale runs agree
  /// exactly with the legacy path, which the differential oracle pins).
  std::size_t exact_cutoff = 256;

  /// ANN candidate generation: `lsh_tables` independent sign-random-
  /// projection hash tables of `lsh_bits` hyperplane bits each. Points
  /// sharing a bucket in any table become candidate pairs.
  std::size_t lsh_tables = 6;
  std::size_t lsh_bits = 10;

  /// Buckets at or below this size contribute all pairs; larger buckets
  /// connect each point to its `bucket_window` successors only (bounds the
  /// candidate count when sketches collapse onto few distinct keys).
  std::size_t max_bucket = 64;
  std::size_t bucket_window = 16;

  /// Incremental re-cluster: joins/leaves/updates accumulate dirtiness;
  /// once dirty operations exceed this fraction of the live population the
  /// affected shards are re-clustered and the merge is refreshed. Below the
  /// threshold, membership changes pay only a nearest-centroid assignment.
  double dirty_threshold = 0.05;

  /// A joining client further than this (sketch-space Hellinger) from every
  /// existing cluster centroid opens a fresh singleton cluster instead of
  /// being pulled into its nearest one.
  double assign_radius = 0.25;

  /// Seed for LSH hyperplanes and sketch projections.
  std::uint64_t seed = 0xACC5;
};

}  // namespace haccs::scale
