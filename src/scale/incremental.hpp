// Incremental re-clustering under client churn.
//
// Re-running the full pipeline on every join/leave would make churn cost
// O(N) per event. Instead the clusterer keeps persistent shard membership
// and per-shard clustering results:
//
//   * join   — the client lands in the last shard with space (or opens a
//              new one) and gets a cheap interim label: its nearest cluster
//              centroid in sketch space if within assign_radius, else a
//              fresh singleton cluster.
//   * leave / update — the client's shard is marked dirty; interim labels
//              handle the gap.
//
// Every mutation counts toward a dirtiness budget. Once dirty operations
// exceed dirty_threshold x live population, recompute_if_dirty() re-clusters
// only the dirty shards and refreshes the cluster-of-clusters merge.
// Because per-shard clustering is deterministic and clean shards keep
// cached results identical to what a recompute would produce, the
// incremental recompute equals a full rebuild() by construction — pinned by
// the churn tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/scale/scale.hpp"

namespace haccs::scale {

class IncrementalClusterer {
 public:
  /// `exact` and `cluster` follow the cluster_sharded contract; `exact` is
  /// keyed by the ids this class hands out (valid while the id is live —
  /// ids of removed clients are recycled).
  IncrementalClusterer(std::size_t sketch_dim, ExactDistanceFn exact,
                       ClusterFn cluster, ScaleConfig config);

  /// Admits a client; returns its stable id. Ids index labels() and are
  /// reused after remove_client.
  std::size_t add_client(std::span<const float> sketch);
  void remove_client(std::size_t id);
  void update_client(std::size_t id, std::span<const float> sketch);

  /// Re-clusters dirty shards and re-merges iff the dirtiness budget is
  /// exceeded. Returns whether a recompute happened.
  bool recompute_if_dirty();
  /// Unconditionally re-clusters dirty shards and re-merges.
  void recompute();
  /// Marks every shard dirty and recomputes — the from-scratch answer the
  /// incremental path must match.
  void rebuild();

  /// Global label of a live client (-1 = noise). Removed ids answer -1.
  int label_of(std::size_t id) const;
  /// Labels indexed by id; dead ids hold -1.
  std::vector<int> labels() const { return labels_; }

  std::size_t size() const { return live_; }
  std::size_t cluster_count() const { return centroids_.size(); }
  double dirty_fraction() const;
  std::size_t shard_count() const { return shards_.size(); }
  bool alive(std::size_t id) const {
    return id < alive_.size() && alive_[id];
  }
  const SketchMatrix& sketches() const { return sketches_; }
  /// Accumulated work accounting across all recomputes.
  const ScaleStats& stats() const { return stats_; }

 private:
  void assign_interim(std::size_t id);

  ExactDistanceFn exact_;
  ClusterFn cluster_;
  ScaleConfig config_;
  SketchMatrix sketches_;

  std::vector<std::size_t> free_;      ///< recycled row ids
  std::vector<bool> alive_;
  std::vector<std::size_t> shard_of_;  ///< id → shard index
  std::vector<ShardClustering> shards_;
  std::vector<bool> shard_dirty_;
  std::vector<int> labels_;            ///< id → global label (-1 noise/dead)
  std::vector<std::vector<float>> centroids_;  ///< global cluster → centroid

  std::size_t live_ = 0;
  std::size_t dirty_ops_ = 0;
  ScaleStats stats_;
};

}  // namespace haccs::scale
