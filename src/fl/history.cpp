#include "src/fl/history.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"
#include "src/obs/obs.hpp"

namespace haccs::fl {

void TrainingHistory::add(RoundRecord record) {
  if (!records_.empty()) {
    HACCS_CHECK_MSG(record.sim_time_s >= records_.back().sim_time_s,
                    "history: simulated time must be monotone");
  }
  records_.push_back(std::move(record));
}

double TrainingHistory::time_to_accuracy(double target) const {
  for (const auto& r : records_) {
    if (r.global_accuracy >= target) return r.sim_time_s;
  }
  return kNeverReached;
}

std::size_t TrainingHistory::epochs_to_accuracy(double target) const {
  for (const auto& r : records_) {
    if (r.global_accuracy >= target) return r.epoch;
  }
  return static_cast<std::size_t>(-1);
}

double TrainingHistory::best_accuracy() const {
  double best = 0.0;
  for (const auto& r : records_) best = std::max(best, r.global_accuracy);
  return best;
}

double TrainingHistory::final_accuracy() const {
  return records_.empty() ? 0.0 : records_.back().global_accuracy;
}

double TrainingHistory::total_time() const {
  return records_.empty() ? 0.0 : records_.back().sim_time_s;
}

std::vector<std::size_t> TrainingHistory::selection_counts(
    std::size_t num_clients) const {
  std::vector<std::size_t> counts(num_clients, 0);
  for (const auto& r : records_) {
    for (std::size_t id : r.selected) {
      if (id < num_clients) ++counts[id];
    }
  }
  return counts;
}

std::size_t TrainingHistory::total_dispatched() const {
  std::size_t total = 0;
  for (const auto& r : records_) total += r.dispatched;
  return total;
}

std::size_t TrainingHistory::total_wasted() const {
  std::size_t total = 0;
  for (const auto& r : records_) total += r.wasted();
  return total;
}

std::size_t TrainingHistory::total_downlink_bytes() const {
  std::size_t total = 0;
  for (const auto& r : records_) total += r.downlink_bytes;
  return total;
}

std::size_t TrainingHistory::total_uplink_bytes() const {
  std::size_t total = 0;
  for (const auto& r : records_) total += r.uplink_bytes;
  return total;
}

std::size_t TrainingHistory::wasted_until_accuracy(double target) const {
  std::size_t total = 0;
  for (const auto& r : records_) {
    total += r.wasted();
    if (r.global_accuracy >= target) break;
  }
  return total;
}

std::string round_event_json(const char* engine, const RoundRecord& r) {
  obs::JsonObject phases;
  phases.field("selection_ms", r.phase.selection_ms)
      .field("dispatch_ms", r.phase.dispatch_ms)
      .field("train_ms", r.phase.train_ms)
      .field("aggregate_ms", r.phase.aggregate_ms)
      .field("evaluate_ms", r.phase.evaluate_ms);
  obs::JsonObject event;
  event.field("type", "round")
      .field("engine", engine)
      .field("epoch", r.epoch)
      .field("sim_time_s", r.sim_time_s)
      .field("round_duration_s", r.round_duration_s)
      .field("deadline_s", r.deadline_s)
      .field("accuracy", r.global_accuracy)
      .field("loss", r.global_loss)
      .field("dispatched", r.dispatched)
      .field("aggregated", r.selected.size())
      .field("wasted", r.wasted())
      .field("downlink_bytes", r.downlink_bytes)
      .field("uplink_bytes", r.uplink_bytes)
      .field_raw("selected", obs::json_array(r.selected))
      .field_raw("crashed", obs::json_array(r.crashed))
      .field_raw("late", obs::json_array(r.late))
      .field_raw("rejected", obs::json_array(r.rejected))
      .field_raw("phase_wall_ms", phases.str());
  return event.str();
}

std::string format_tta(double tta_seconds) {
  if (tta_seconds == kNeverReached) return "never";
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << tta_seconds;
  return os.str();
}

}  // namespace haccs::fl
