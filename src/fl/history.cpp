#include "src/fl/history.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"

namespace haccs::fl {

void TrainingHistory::add(RoundRecord record) {
  if (!records_.empty()) {
    HACCS_CHECK_MSG(record.sim_time_s >= records_.back().sim_time_s,
                    "history: simulated time must be monotone");
  }
  records_.push_back(std::move(record));
}

double TrainingHistory::time_to_accuracy(double target) const {
  for (const auto& r : records_) {
    if (r.global_accuracy >= target) return r.sim_time_s;
  }
  return kNeverReached;
}

std::size_t TrainingHistory::epochs_to_accuracy(double target) const {
  for (const auto& r : records_) {
    if (r.global_accuracy >= target) return r.epoch;
  }
  return static_cast<std::size_t>(-1);
}

double TrainingHistory::best_accuracy() const {
  double best = 0.0;
  for (const auto& r : records_) best = std::max(best, r.global_accuracy);
  return best;
}

double TrainingHistory::final_accuracy() const {
  return records_.empty() ? 0.0 : records_.back().global_accuracy;
}

double TrainingHistory::total_time() const {
  return records_.empty() ? 0.0 : records_.back().sim_time_s;
}

std::vector<std::size_t> TrainingHistory::selection_counts(
    std::size_t num_clients) const {
  std::vector<std::size_t> counts(num_clients, 0);
  for (const auto& r : records_) {
    for (std::size_t id : r.selected) {
      if (id < num_clients) ++counts[id];
    }
  }
  return counts;
}

std::size_t TrainingHistory::total_dispatched() const {
  std::size_t total = 0;
  for (const auto& r : records_) total += r.dispatched;
  return total;
}

std::size_t TrainingHistory::total_wasted() const {
  std::size_t total = 0;
  for (const auto& r : records_) total += r.wasted();
  return total;
}

std::size_t TrainingHistory::wasted_until_accuracy(double target) const {
  std::size_t total = 0;
  for (const auto& r : records_) {
    total += r.wasted();
    if (r.global_accuracy >= target) break;
  }
  return total;
}

std::string format_tta(double tta_seconds) {
  if (tta_seconds == kNeverReached) return "never";
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << tta_seconds;
  return os.str();
}

}  // namespace haccs::fl
