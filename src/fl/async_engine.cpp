#include "src/fl/async_engine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/fl/engine.hpp"  // update_is_valid
#include "src/obs/events.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs::fl {

namespace {
/// Async-engine telemetry. Counter names are shared with the synchronous
/// engine where the semantics line up (rounds_total counts aggregations
/// here); async-only instruments get their own names.
struct AsyncMetrics {
  obs::Counter& rounds = obs::Registry::global().counter("rounds_total");
  obs::Counter& dispatched =
      obs::Registry::global().counter("clients_dispatched_total");
  obs::Counter& crashed =
      obs::Registry::global().counter("clients_crashed_total");
  obs::Counter& rejected =
      obs::Registry::global().counter("updates_rejected_total");
  obs::Counter& evaluations =
      obs::Registry::global().counter("evaluations_total");
  obs::Histogram& train_ms =
      obs::Registry::global().histogram("local_train_wall_ms");
  obs::Histogram& staleness =
      obs::Registry::global().histogram("async_update_staleness",
                                        {0, 1, 2, 4, 8, 16, 32, 64});

  static AsyncMetrics& get() {
    static AsyncMetrics metrics;
    return metrics;
  }
};
}  // namespace

AsyncFederatedTrainer::AsyncFederatedTrainer(
    const data::FederatedDataset& dataset,
    std::function<nn::Sequential()> model_factory, AsyncEngineConfig config)
    : dataset_(dataset),
      model_factory_(std::move(model_factory)),
      config_(config),
      latency_model_(config.latency),
      fault_model_(config.faults) {
  if (dataset_.clients.empty()) {
    throw std::invalid_argument("AsyncFederatedTrainer: no clients");
  }
  if (config_.max_in_flight == 0 ||
      config_.max_in_flight > dataset_.clients.size()) {
    throw std::invalid_argument(
        "AsyncFederatedTrainer: max_in_flight out of range");
  }
  if (config_.buffer_size == 0 ||
      config_.buffer_size > config_.max_in_flight) {
    throw std::invalid_argument(
        "AsyncFederatedTrainer: buffer_size must be in [1, max_in_flight]");
  }
  if (config_.server_lr <= 0.0) {
    throw std::invalid_argument("AsyncFederatedTrainer: server_lr must be > 0");
  }
  if (config_.staleness_alpha < 0.0) {
    throw std::invalid_argument(
        "AsyncFederatedTrainer: staleness_alpha must be >= 0");
  }
  if (config_.max_update_norm < 0.0) {
    throw std::invalid_argument(
        "AsyncFederatedTrainer: max_update_norm must be >= 0");
  }
  // Same profile stream derivation as the synchronous engine, so a given
  // seed assigns identical hardware in both (apples-to-apples comparisons).
  Rng profile_rng(config_.seed ^ 0xdeadbeefcafef00dULL);
  profiles_.reserve(dataset_.clients.size());
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    profiles_.push_back(sim::DeviceProfile::sample(profile_rng));
  }
}

double AsyncFederatedTrainer::client_latency(std::size_t i) const {
  if (i >= profiles_.size()) {
    throw std::out_of_range("client_latency: bad client id");
  }
  return latency_model_.round_latency(profiles_[i],
                                      dataset_.clients[i].train.size());
}

TrainingHistory AsyncFederatedTrainer::run(ClientSelector& selector) {
  const auto schedule = sim::make_always_available(dataset_.clients.size());
  return run(selector, *schedule);
}

TrainingHistory AsyncFederatedTrainer::run(ClientSelector& selector,
                                           const sim::DropoutSchedule& dropout) {
  if (dropout.num_clients() != dataset_.clients.size()) {
    throw std::invalid_argument("run: dropout schedule arity mismatch");
  }
  nn::Sequential model = model_factory_();
  std::vector<float> global_params = model.get_parameters();
  const std::size_t n = dataset_.clients.size();

  std::vector<ClientRuntimeInfo> view;
  view.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ClientRuntimeInfo info;
    info.id = i;
    info.latency_s = client_latency(i);
    info.num_samples = dataset_.clients[i].train.size();
    info.last_loss = config_.initial_loss;
    view.push_back(info);
  }
  selector.initialize(view);

  Rng select_rng(config_.seed ^ 0x5e1ec70aULL);
  Rng train_rng(config_.seed ^ 0x7a314e55ULL);
  Rng jitter_rng(config_.seed ^ 0x1a7e2c3dULL);

  // Completion events, earliest first (ties: lowest sequence for
  // determinism).
  struct Event {
    double time;
    std::uint64_t sequence;
    std::size_t client;
    std::size_t base_version;          // aggregation count at dispatch
    std::vector<float> delta;          // local - global_at_dispatch
    double loss;
    bool crashed = false;              // mid-round crash: no update arrives
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events;

  std::vector<bool> in_flight(n, false);
  std::size_t version = 0;      // aggregations completed
  double now = 0.0;
  std::uint64_t sequence = 0;

  AsyncMetrics& metrics = AsyncMetrics::get();
  // Wall time spent in local training since the last aggregation, for that
  // aggregation's phase breakdown.
  double train_wall_ms = 0.0;

  // Dispatch one client chosen by the selector (in-flight and dropped-out
  // devices masked). Returns false when nobody is dispatchable.
  auto dispatch_one = [&]() -> bool {
    obs::Span dispatch_span("dispatch", "fl");
    const auto mask = dropout.available(version);
    for (std::size_t i = 0; i < n; ++i) {
      view[i].available = mask[i] && !in_flight[i];
    }
    const auto picks = selector.select(1, view, version, select_rng);
    if (picks.empty()) return false;
    const std::size_t id = picks[0];
    HACCS_CHECK_MSG(id < n && view[id].available,
                    "async: selector returned bad client");
    metrics.dispatched.inc();

    // Post-dispatch fault for this (client, aggregation) — pure in the
    // seed, so every strategy faces the same trace.
    sim::FaultEvent fault;
    if (fault_model_.enabled()) fault = fault_model_.at(id, version);

    Event event;
    event.client = id;
    event.base_version = version;
    event.loss = config_.initial_loss;
    // The fork is consumed even for crashed dispatches, keeping the
    // training streams aligned across fault configurations.
    Rng client_rng = train_rng.fork();
    if (fault.kind == sim::FaultKind::Crash) {
      event.crashed = true;  // dies mid-round; its compute is wasted
    } else {
      // Train now (simulation: result materializes at completion time).
      obs::Span train_span("local_train", "fl");
      obs::StopWatch train_clock;
      nn::Sequential local_model = model_factory_();
      local_model.set_parameters(global_params);
      const auto result =
          train_local(local_model, dataset_.clients[id].train, config_.local,
                      client_rng);
      const double ms = train_clock.lap_ms();
      train_wall_ms += ms;
      metrics.train_ms.observe(ms);
      const auto updated = local_model.get_parameters();
      event.loss = result.average_loss;
      event.delta.resize(updated.size());
      for (std::size_t p = 0; p < updated.size(); ++p) {
        event.delta[p] = updated[p] - global_params[p];
      }
      fault_model_.corrupt(fault, event.delta);
    }
    const double jitter =
        config_.latency_jitter_sigma > 0.0
            ? std::exp(config_.latency_jitter_sigma * jitter_rng.normal())
            : 1.0;
    double latency = view[id].latency_s * jitter;
    if (fault.kind == sim::FaultKind::Straggler) {
      latency *= fault.latency_multiplier;
    } else if (fault.kind == sim::FaultKind::Crash) {
      // The slot frees at the crash instant, not the full round latency.
      latency *= fault.crash_frac;
    }
    event.time = now + latency;
    event.sequence = sequence++;
    in_flight[id] = true;
    events.push(event);
    return true;
  };

  // Fill the initial in-flight set.
  for (std::size_t s = 0; s < config_.max_in_flight; ++s) {
    if (!dispatch_one()) break;
  }

  TrainingHistory history;
  std::vector<Event> buffer;
  double last_aggregation_time = 0.0;
  double last_accuracy = 0.0, last_loss = config_.initial_loss;
  // Fault accounting carried into the next aggregation's record.
  std::vector<std::size_t> crashed_since, rejected_since;
  std::size_t arrived_since = 0;

  while (version < config_.aggregations && !events.empty()) {
    Event event = events.top();
    events.pop();
    now = event.time;
    in_flight[event.client] = false;
    if (event.crashed) {
      // Crash event: the in-flight slot is freed at the crash instant and
      // the refill below re-dispatches immediately.
      crashed_since.push_back(event.client);
      obs::instant("client_crash", "fault");
      metrics.crashed.inc();
      selector.report_failure(event.client, version, FailureKind::Crash);
    } else if (!update_is_valid(event.delta, config_.max_update_norm)) {
      rejected_since.push_back(event.client);
      obs::instant("update_rejected", "fault");
      metrics.rejected.inc();
      selector.report_failure(event.client, version,
                              FailureKind::CorruptUpdate);
    } else {
      ++arrived_since;
      view[event.client].last_loss = event.loss;
      selector.report_result(event.client, event.loss, version);
      buffer.push_back(std::move(event));
    }

    if (buffer.size() >= config_.buffer_size) {
      // Staleness-weighted buffered aggregation.
      obs::Span aggregate_span("aggregate", "fl");
      obs::StopWatch aggregate_clock;
      std::vector<double> accumulated(global_params.size(), 0.0);
      double total_weight = 0.0;
      RoundRecord record;
      for (const auto& update : buffer) {
        const double staleness =
            static_cast<double>(version - update.base_version);
        metrics.staleness.observe(staleness);
        const double weight =
            static_cast<double>(dataset_.clients[update.client].train.size()) /
            std::pow(1.0 + staleness, config_.staleness_alpha);
        vec::accumulate_scaled(accumulated, update.delta, weight);
        total_weight += weight;
        record.selected.push_back(update.client);
      }
      buffer.clear();
      for (std::size_t p = 0; p < global_params.size(); ++p) {
        global_params[p] += static_cast<float>(
            config_.server_lr * accumulated[p] / total_weight);
      }
      ++version;
      record.phase.train_ms = train_wall_ms;
      train_wall_ms = 0.0;
      record.phase.aggregate_ms = aggregate_clock.lap_ms();

      record.epoch = version - 1;
      record.sim_time_s = now;
      record.round_duration_s = now - last_aggregation_time;
      last_aggregation_time = now;
      record.dispatched = arrived_since + crashed_since.size() +
                          rejected_since.size();
      record.crashed = std::move(crashed_since);
      record.rejected = std::move(rejected_since);
      crashed_since.clear();
      rejected_since.clear();
      arrived_since = 0;

      const bool eval_now = (version - 1) % config_.eval_every == 0 ||
                            version == config_.aggregations;
      if (eval_now) {
        obs::Span eval_span("evaluate", "fl");
        obs::StopWatch eval_clock;
        model.set_parameters(global_params);
        double acc = 0.0, loss = 0.0;
        for (const auto& client : dataset_.clients) {
          const auto r = evaluate(model, client.test);
          acc += r.accuracy;
          loss += r.loss;
        }
        last_accuracy = acc / static_cast<double>(n);
        last_loss = loss / static_cast<double>(n);
        record.phase.evaluate_ms = eval_clock.lap_ms();
        metrics.evaluations.inc();
      }
      record.global_accuracy = last_accuracy;
      record.global_loss = last_loss;
      metrics.rounds.inc();
      if (obs::events_enabled()) {
        obs::RunEventLog::global().emit(round_event_json("async", record));
      }
      history.add(std::move(record));
    }

    // Refill freed capacity.
    std::size_t active = 0;
    for (bool f : in_flight) {
      if (f) ++active;
    }
    while (active + buffer.size() < config_.max_in_flight) {
      if (!dispatch_one()) break;
      ++active;
    }
  }

  final_parameters_ = std::move(global_params);
  return history;
}

}  // namespace haccs::fl
