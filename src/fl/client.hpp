// Local client training and evaluation primitives.
//
// In federated averaging the client receives the global parameters, runs a
// few epochs of minibatch SGD on its local split, and returns the updated
// parameters. The round engine calls these helpers with a single shared
// model instance per simulated client turn (set_parameters / train /
// get_parameters), which matches FedAvg semantics without allocating one
// model per client.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/data/dataset.hpp"
#include "src/nn/model.hpp"
#include "src/nn/optimizer.hpp"

namespace haccs::fl {

struct LocalTrainConfig {
  std::size_t epochs = 1;
  std::size_t batch_size = 32;
  nn::SgdConfig sgd;
};

struct LocalTrainResult {
  double average_loss = 0.0;  ///< mean loss over all minibatches
  double final_loss = 0.0;    ///< loss of the last minibatch
  std::size_t batches = 0;
};

/// Trains `model` in place on `dataset`. Batch order is drawn from `rng`.
/// Throws if the dataset is empty.
LocalTrainResult train_local(nn::Sequential& model,
                             const data::Dataset& dataset,
                             const LocalTrainConfig& config, Rng& rng);

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t samples = 0;
};

/// Evaluates `model` on the full dataset through the const inference path
/// (no layer state is touched, so the same model instance can be evaluated
/// from several threads at once). Returns zeros for an empty dataset.
EvalResult evaluate(const nn::Sequential& model, const data::Dataset& dataset,
                    std::size_t batch_size = 128);

}  // namespace haccs::fl
