// FedProx local training (Li et al., MLSys'20) — the system-heterogeneity
// mitigation the paper discusses in §VI.
//
// Two deviations from plain FedAvg local SGD:
//   * a proximal term (mu/2) * ||w - w_global||^2 added to every local
//     objective, pulling client updates toward the global model so that
//     heterogeneous amounts of local work stay aggregatable;
//   * variable local work: a straggler may run fewer local epochs ("partial
//     work") instead of being dropped, and its partial update is still
//     aggregated.
//
// HACCS composes with FedProx: selection decides WHO trains; FedProx decides
// HOW MUCH and with what objective. The ablation bench compares FedAvg and
// FedProx under both schedulers.
#pragma once

#include "src/fl/client.hpp"

namespace haccs::fl {

struct FedProxConfig {
  LocalTrainConfig local;
  /// Proximal coefficient mu (0 recovers plain local SGD).
  double mu = 0.01;
  /// Work scale in (0, 1]: fraction of the configured local epochs this
  /// client actually performs (at least one minibatch always runs).
  double work_fraction = 1.0;
};

/// Trains `model` in place starting from `global_params` (which must match
/// the model's parameter count) with the FedProx proximal objective.
LocalTrainResult train_local_fedprox(nn::Sequential& model,
                                     std::span<const float> global_params,
                                     const data::Dataset& dataset,
                                     const FedProxConfig& config, Rng& rng);

/// Work fraction for a device: fast devices do full work; slower categories
/// progressively less, mirroring FedProx's tolerance of partial updates.
/// latency_ratio = client latency / fastest client latency (>= 1).
double fedprox_work_fraction(double latency_ratio, double min_fraction = 0.3);

}  // namespace haccs::fl
