// Training history and the time-to-accuracy (TTA) metric.
//
// Every evaluation point records the simulated clock, the round index, and
// global accuracy/loss (the average over all clients' local test sets, per
// the paper's problem statement: convergence "with respect to all devices in
// the system"). TTA is the paper's headline metric (§V): the first simulated
// time at which global accuracy reaches a target.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace haccs::fl {

/// Wall-clock phase breakdown of one round, milliseconds. All zeros unless
/// telemetry is enabled (obs::timing_enabled()) — the engines skip the
/// clock reads entirely on untraced runs.
struct PhaseTimings {
  double selection_ms = 0.0;  ///< selector.select + invariant checks
  double dispatch_ms = 0.0;   ///< fault trace + deadline computation
  double train_ms = 0.0;      ///< local training, wall (all clients)
  double aggregate_ms = 0.0;  ///< validation + FedAvg accumulation
  double evaluate_ms = 0.0;   ///< global evaluation (0 on non-eval rounds)
};

struct RoundRecord {
  std::size_t epoch = 0;
  double sim_time_s = 0.0;       ///< simulated clock after this round
  double round_duration_s = 0.0; ///< straggler latency of this round
  double global_accuracy = 0.0;  ///< mean accuracy over all client test sets
  double global_loss = 0.0;
  std::vector<std::size_t> selected;  ///< clients whose updates aggregated

  // Fault-layer accounting (all empty/zero on clean runs; `selected` keeps
  // its pre-fault meaning so bias metrics stay comparable).
  std::size_t dispatched = 0;    ///< clients sent the model this round
  double deadline_s = 0.0;       ///< round deadline (0 = none)
  std::vector<std::size_t> crashed;   ///< died mid-round
  std::vector<std::size_t> late;      ///< missed the deadline
  std::vector<std::size_t> rejected;  ///< update failed validation

  // Communication accounting, in real wire bytes (full frames as the net
  // codecs emit them — see fl/protocol.hpp pricing). Identical between an
  // in-process round and the same round over a transport.
  std::size_t downlink_bytes = 0;  ///< server -> clients (TrainJob frames)
  std::size_t uplink_bytes = 0;    ///< clients -> server (ClientUpdate frames)

  /// Wall-clock phase breakdown (observability; zeros on untraced runs).
  PhaseTimings phase;

  /// Client-rounds of wasted work this round (dispatched but not aggregated).
  std::size_t wasted() const {
    return crashed.size() + late.size() + rejected.size();
  }
};

/// Serializes one round as a structured run event (a single JSON object):
/// the full RoundRecord plus per-phase wall timings, tagged with the engine
/// that produced it ("sync" / "async"). This is the JSONL schema documented
/// in DESIGN.md §5e.
std::string round_event_json(const char* engine, const RoundRecord& record);

class TrainingHistory {
 public:
  void add(RoundRecord record);

  const std::vector<RoundRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  /// First simulated time at which accuracy >= target; +inf if never.
  double time_to_accuracy(double target) const;

  /// First epoch at which accuracy >= target; SIZE_MAX if never.
  std::size_t epochs_to_accuracy(double target) const;

  /// Highest accuracy observed.
  double best_accuracy() const;

  /// Final (last-recorded) accuracy.
  double final_accuracy() const;

  /// Total simulated training time.
  double total_time() const;

  /// How many times each client id in [0, num_clients) was selected.
  std::vector<std::size_t> selection_counts(std::size_t num_clients) const;

  /// Total client-rounds dispatched across the run.
  std::size_t total_dispatched() const;

  /// Total wasted client-rounds (crashed + late + rejected).
  std::size_t total_wasted() const;

  /// Wasted client-rounds accumulated up to (and including) the first round
  /// whose accuracy reaches `target`; the full-run total if never reached.
  std::size_t wasted_until_accuracy(double target) const;

  /// Total downlink wire bytes (TrainJob frames) across the run.
  std::size_t total_downlink_bytes() const;

  /// Total uplink wire bytes (ClientUpdate frames) across the run.
  std::size_t total_uplink_bytes() const;

 private:
  std::vector<RoundRecord> records_;
};

inline constexpr double kNeverReached = std::numeric_limits<double>::infinity();

/// Formats a TTA value for tables ("inf" when the target was never reached).
std::string format_tta(double tta_seconds);

}  // namespace haccs::fl
