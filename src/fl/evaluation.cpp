#include "src/fl/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/threadpool.hpp"
#include "src/nn/loss.hpp"

namespace haccs::fl {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : classes_(classes), counts_(classes * classes, 0) {
  if (classes == 0) throw std::invalid_argument("ConfusionMatrix: 0 classes");
}

void ConfusionMatrix::add(std::int64_t truth, std::int64_t predicted) {
  if (truth < 0 || predicted < 0 ||
      static_cast<std::size_t>(truth) >= classes_ ||
      static_cast<std::size_t>(predicted) >= classes_) {
    throw std::invalid_argument("ConfusionMatrix::add: label out of range");
  }
  ++counts_[static_cast<std::size_t>(truth) * classes_ +
            static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::at(std::size_t truth, std::size_t predicted) const {
  if (truth >= classes_ || predicted >= classes_) {
    throw std::out_of_range("ConfusionMatrix::at");
  }
  return counts_[truth * classes_ + predicted];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts_) t += c;
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t t = total();
  if (t == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(t);
}

std::vector<double> ConfusionMatrix::per_class_recall() const {
  std::vector<double> out(classes_, 0.0);
  for (std::size_t c = 0; c < classes_; ++c) {
    std::size_t row_total = 0;
    for (std::size_t p = 0; p < classes_; ++p) row_total += at(c, p);
    if (row_total > 0) {
      out[c] = static_cast<double>(at(c, c)) / static_cast<double>(row_total);
    }
  }
  return out;
}

std::vector<double> ConfusionMatrix::per_class_precision() const {
  std::vector<double> out(classes_, 0.0);
  for (std::size_t p = 0; p < classes_; ++p) {
    std::size_t col_total = 0;
    for (std::size_t c = 0; c < classes_; ++c) col_total += at(c, p);
    if (col_total > 0) {
      out[p] = static_cast<double>(at(p, p)) / static_cast<double>(col_total);
    }
  }
  return out;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.classes_ != classes_) {
    throw std::invalid_argument("ConfusionMatrix::merge: class mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

ConfusionMatrix confusion_matrix(const nn::Sequential& model,
                                 const data::Dataset& dataset,
                                 std::size_t batch_size) {
  if (batch_size == 0) {
    throw std::invalid_argument("confusion_matrix: zero batch size");
  }
  ConfusionMatrix matrix(dataset.num_classes());
  if (dataset.empty()) return matrix;
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  const std::size_t num_batches = (indices.size() + batch_size - 1) / batch_size;
  // One matrix per batch, filled in parallel through the const inference
  // path, then merged serially. Counts are integers, so the merge order
  // cannot change the result.
  std::vector<ConfusionMatrix> partial(num_batches,
                                       ConfusionMatrix(dataset.num_classes()));
  parallel_for(0, num_batches, [&](std::size_t bi) {
    const std::size_t start = bi * batch_size;
    const std::size_t end = std::min(indices.size(), start + batch_size);
    const std::span<const std::size_t> batch(indices.data() + start,
                                             end - start);
    const Tensor logits = model.infer(dataset.batch_features(batch));
    const auto labels = dataset.batch_labels(batch);
    const std::size_t c = logits.extent(1);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const float* row = logits.raw() + i * c;
      const auto pred = static_cast<std::int64_t>(
          std::max_element(row, row + c) - row);
      partial[bi].add(labels[i], pred);
    }
  });
  for (const ConfusionMatrix& p : partial) matrix.merge(p);
  return matrix;
}

double participation_gini(std::span<const std::size_t> selection_counts) {
  if (selection_counts.empty()) {
    throw std::invalid_argument("participation_gini: empty input");
  }
  std::vector<double> sorted(selection_counts.begin(), selection_counts.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double total = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    weighted += (static_cast<double>(i) + 1.0) * sorted[i];
  }
  if (total <= 0.0) return 0.0;  // nobody ever selected: call it even
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double accuracy_spread(std::span<const double> per_client_accuracy) {
  if (per_client_accuracy.empty()) {
    throw std::invalid_argument("accuracy_spread: empty input");
  }
  double mean = 0.0;
  for (double a : per_client_accuracy) mean += a;
  mean /= static_cast<double>(per_client_accuracy.size());
  double var = 0.0;
  for (double a : per_client_accuracy) var += (a - mean) * (a - mean);
  var /= static_cast<double>(per_client_accuracy.size());
  return std::sqrt(var);
}

}  // namespace haccs::fl
