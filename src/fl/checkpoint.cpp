#include "src/fl/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "src/net/frame.hpp"
#include "src/net/wire.hpp"
#include "src/obs/metrics.hpp"

namespace haccs::fl {

namespace {

// Distinguishes run checkpoints from model-parameter checkpoints
// (nn/serialize.hpp) sharing the Checkpoint frame type.
constexpr const char* kRunStateMagic = "HACCS-RUN";

void write_rng_state(net::WireWriter& w, const Rng::State& s) {
  for (std::uint64_t word : s.s) w.u64(word);
  w.f64(s.cached_normal);
  w.u8(s.has_cached_normal ? 1 : 0);
}

Rng::State read_rng_state(net::WireReader& r) {
  Rng::State s;
  for (std::uint64_t& word : s.s) word = r.u64();
  s.cached_normal = r.f64();
  s.has_cached_normal = r.u8() != 0;
  return s;
}

void write_ids(net::WireWriter& w, const std::vector<std::size_t>& ids) {
  w.u64(ids.size());
  for (std::size_t id : ids) w.u64(static_cast<std::uint64_t>(id));
}

std::vector<std::size_t> read_ids(net::WireReader& r) {
  const auto n = r.u64();
  std::vector<std::size_t> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<std::size_t>(r.u64()));
  }
  return ids;
}

void write_record(net::WireWriter& w, const RoundRecord& rec) {
  w.u64(rec.epoch);
  w.f64(rec.sim_time_s);
  w.f64(rec.round_duration_s);
  w.f64(rec.global_accuracy);
  w.f64(rec.global_loss);
  write_ids(w, rec.selected);
  w.u64(rec.dispatched);
  w.f64(rec.deadline_s);
  write_ids(w, rec.crashed);
  write_ids(w, rec.late);
  write_ids(w, rec.rejected);
  w.u64(rec.downlink_bytes);
  w.u64(rec.uplink_bytes);
  // PhaseTimings deliberately omitted: wall-clock noise, zeroed on load.
}

RoundRecord read_record(net::WireReader& r) {
  RoundRecord rec;
  rec.epoch = static_cast<std::size_t>(r.u64());
  rec.sim_time_s = r.f64();
  rec.round_duration_s = r.f64();
  rec.global_accuracy = r.f64();
  rec.global_loss = r.f64();
  rec.selected = read_ids(r);
  rec.dispatched = static_cast<std::size_t>(r.u64());
  rec.deadline_s = r.f64();
  rec.crashed = read_ids(r);
  rec.late = read_ids(r);
  rec.rejected = read_ids(r);
  rec.downlink_bytes = static_cast<std::size_t>(r.u64());
  rec.uplink_bytes = static_cast<std::size_t>(r.u64());
  return rec;
}

struct CheckpointMetrics {
  obs::Counter& written =
      obs::Registry::global().counter("checkpoints_written_total");
  obs::Histogram& write_seconds = obs::Registry::global().histogram(
      "checkpoint_write_seconds",
      {0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0});

  static CheckpointMetrics& get() {
    static CheckpointMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_run_state(const RunState& state) {
  net::WireWriter w;
  w.string(kRunStateMagic);
  w.u16(kRunStateVersion);
  w.u64(state.next_epoch);
  w.f64(state.sim_time_s);
  w.f64(state.last_accuracy);
  w.f64(state.last_loss);
  w.f32_array(state.global_params);
  write_rng_state(w, state.select_rng);
  write_rng_state(w, state.train_rng);
  w.f64_array(state.client_last_loss);
  w.u64(state.breakers.size());
  for (const auto& b : state.breakers) {
    w.u64(b.consecutive_failures);
    w.u64(b.trips);
    w.u64(b.open_until);
    w.u8(b.tripped ? 1 : 0);
  }
  w.u8_array(state.selector_state);
  w.u64(state.records.size());
  for (const auto& rec : state.records) write_record(w, rec);
  return net::encode_frame(net::Frame{net::MessageType::Checkpoint, w.take()});
}

RunState decode_run_state(std::span<const std::uint8_t> bytes) {
  net::Frame frame;
  switch (net::decode_frame(bytes, &frame)) {
    case net::FrameStatus::Ok:
      break;
    case net::FrameStatus::NeedMore:
      throw std::runtime_error("decode_run_state: truncated checkpoint");
    case net::FrameStatus::BadChecksum:
      throw std::runtime_error(
          "decode_run_state: checkpoint CRC mismatch (corrupt file)");
    default:
      throw std::runtime_error("decode_run_state: not a HACCS checkpoint");
  }
  if (frame.type != net::MessageType::Checkpoint) {
    throw std::runtime_error("decode_run_state: frame is not a checkpoint");
  }
  try {
    net::WireReader r(frame.payload);
    if (r.string() != kRunStateMagic) {
      throw std::runtime_error(
          "decode_run_state: not a run checkpoint (model parameters?)");
    }
    const std::uint16_t version = r.u16();
    if (version != kRunStateVersion) {
      throw std::runtime_error(
          "decode_run_state: unsupported run-checkpoint version " +
          std::to_string(version));
    }
    RunState state;
    state.next_epoch = static_cast<std::size_t>(r.u64());
    state.sim_time_s = r.f64();
    state.last_accuracy = r.f64();
    state.last_loss = r.f64();
    state.global_params = r.f32_array();
    state.select_rng = read_rng_state(r);
    state.train_rng = read_rng_state(r);
    state.client_last_loss = r.f64_array();
    const auto num_breakers = r.u64();
    state.breakers.reserve(static_cast<std::size_t>(num_breakers));
    for (std::uint64_t i = 0; i < num_breakers; ++i) {
      sim::CircuitBreaker::Snapshot snap;
      snap.consecutive_failures = static_cast<std::size_t>(r.u64());
      snap.trips = static_cast<std::size_t>(r.u64());
      snap.open_until = static_cast<std::size_t>(r.u64());
      snap.tripped = r.u8() != 0;
      state.breakers.push_back(snap);
    }
    state.selector_state = r.u8_array();
    const auto num_records = r.u64();
    state.records.reserve(static_cast<std::size_t>(num_records));
    for (std::uint64_t i = 0; i < num_records; ++i) {
      state.records.push_back(read_record(r));
    }
    r.expect_exhausted();
    return state;
  } catch (const net::WireError& e) {
    throw std::runtime_error(
        std::string("decode_run_state: malformed checkpoint payload: ") +
        e.what());
  }
}

void save_run_state(const RunState& state, const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  const auto encoded = encode_run_state(state);
  // Durable atomic publish: write + fsync a sibling temp file, rename it
  // over the destination, then fsync the directory so the rename itself
  // survives power loss. A crash at any point leaves either the old
  // checkpoint or the complete new one — never a torn file.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("save_run_state: cannot open " + tmp);
  }
  auto fail = [&](const char* what) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw std::runtime_error(std::string("save_run_state: ") + what + ": " +
                             tmp);
  };
  std::size_t written = 0;
  while (written < encoded.size()) {
    const ssize_t n =
        ::write(fd, encoded.data() + written, encoded.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) fail("fsync failed");
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_run_state: close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_run_state: rename to " + path + " failed");
  }
  // Best effort — some filesystems refuse fsync on a directory fd.
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  CheckpointMetrics& metrics = CheckpointMetrics::get();
  metrics.written.inc();
  metrics.write_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
}

RunState load_run_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_run_state: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode_run_state(bytes);
}

}  // namespace haccs::fl
