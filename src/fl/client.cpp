#include "src/fl/client.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/nn/loss.hpp"

namespace haccs::fl {

LocalTrainResult train_local(nn::Sequential& model,
                             const data::Dataset& dataset,
                             const LocalTrainConfig& config, Rng& rng) {
  if (dataset.empty()) {
    throw std::invalid_argument("train_local: empty dataset");
  }
  if (config.batch_size == 0 || config.epochs == 0) {
    throw std::invalid_argument("train_local: zero batch size or epochs");
  }
  model.set_training(true);
  nn::SgdOptimizer optimizer(config.sgd);

  LocalTrainResult result;
  double loss_sum = 0.0;
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(indices);
    for (std::size_t start = 0; start < indices.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(indices.size(), start + config.batch_size);
      const std::span<const std::size_t> batch(indices.data() + start,
                                               end - start);
      const Tensor features = dataset.batch_features(batch);
      const auto labels = dataset.batch_labels(batch);

      model.zero_grad();
      const Tensor logits = model.forward(features);
      auto loss = nn::softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      optimizer.step(model);

      loss_sum += loss.loss;
      result.final_loss = loss.loss;
      ++result.batches;
    }
  }
  result.average_loss = loss_sum / static_cast<double>(result.batches);
  return result;
}

EvalResult evaluate(const nn::Sequential& model, const data::Dataset& dataset,
                    std::size_t batch_size) {
  EvalResult result;
  if (dataset.empty()) return result;
  if (batch_size == 0) {
    throw std::invalid_argument("evaluate: zero batch size");
  }
  double loss_sum = 0.0;
  std::size_t correct = 0;
  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  for (std::size_t start = 0; start < indices.size(); start += batch_size) {
    const std::size_t end = std::min(indices.size(), start + batch_size);
    const std::span<const std::size_t> batch(indices.data() + start,
                                             end - start);
    const Tensor features = dataset.batch_features(batch);
    const auto labels = dataset.batch_labels(batch);
    const Tensor logits = model.infer(features);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    loss_sum += loss.loss * static_cast<double>(batch.size());
    correct += loss.correct;
  }
  result.samples = dataset.size();
  result.loss = loss_sum / static_cast<double>(dataset.size());
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(dataset.size());
  return result;
}

}  // namespace haccs::fl
