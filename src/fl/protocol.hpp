// Bridge between the FL layer's types and the net wire format.
//
// src/net knows byte shapes; src/fl knows federated semantics. This header
// is where they meet: CompressionKind <-> UpdateKind, CompressedUpdate ->
// UpdatePayload, and the frame-size pricing the engine uses for per-round
// uplink/downlink accounting. The pricing functions return the exact byte
// counts the codecs emit (pinned by NetCodec.* tests), so RoundRecord's
// bytes are real wire bytes whether a round ran in-process or over TCP.
#pragma once

#include <cstdint>

#include "src/fl/compression.hpp"
#include "src/net/messages.hpp"

namespace haccs::fl {

net::UpdateKind to_update_kind(CompressionKind kind);
CompressionKind to_compression_kind(net::UpdateKind kind);

/// Wire form of a compressed update (delta of length n). The payload's
/// to_dense() reproduces `compressed.dense` bit-exactly. Throws
/// std::logic_error if the emitted tensor body would not match
/// compressed_wire_bytes(n, config) — the latency model's pricing and the
/// wire must never drift.
net::UpdatePayload make_update_payload(const CompressedUpdate& compressed,
                                       std::size_t n,
                                       const CompressionConfig& config);

/// Full frame size of a TrainJob carrying an n-parameter model (downlink).
std::size_t train_job_frame_bytes(std::size_t n);

/// Full frame size of a ClientUpdate carrying an n-parameter update under
/// `config` (uplink): metadata overhead + compressed_wire_bytes(n, config).
std::size_t update_frame_bytes(std::size_t n, const CompressionConfig& config);

}  // namespace haccs::fl
