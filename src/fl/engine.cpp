#include "src/fl/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "src/common/error.hpp"
#include "src/common/threadpool.hpp"
#include "src/common/logging.hpp"
#include "src/fl/protocol.hpp"
#include "src/obs/events.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs::fl {

namespace {
/// Engine telemetry instruments, registered once and shared by both engines
/// (one process-global registry; snapshots aggregate across runs).
struct EngineMetrics {
  obs::Counter& rounds = obs::Registry::global().counter("rounds_total");
  obs::Counter& dispatched =
      obs::Registry::global().counter("clients_dispatched_total");
  obs::Counter& crashed =
      obs::Registry::global().counter("clients_crashed_total");
  obs::Counter& late = obs::Registry::global().counter("clients_late_total");
  obs::Counter& rejected =
      obs::Registry::global().counter("updates_rejected_total");
  obs::Counter& evaluations =
      obs::Registry::global().counter("evaluations_total");
  obs::Histogram& train_ms =
      obs::Registry::global().histogram("local_train_wall_ms");
  obs::Histogram& round_ms =
      obs::Registry::global().histogram("round_wall_ms");

  static EngineMetrics& get() {
    static EngineMetrics metrics;
    return metrics;
  }
};
}  // namespace

FederatedTrainer::FederatedTrainer(const data::FederatedDataset& dataset,
                                   std::function<nn::Sequential()> model_factory,
                                   EngineConfig config)
    : dataset_(dataset),
      model_factory_(std::move(model_factory)),
      config_(config),
      latency_model_(config.latency),
      fault_model_(config.faults) {
  if (dataset_.clients.empty()) {
    throw std::invalid_argument("FederatedTrainer: no clients");
  }
  if (config_.clients_per_round == 0 ||
      config_.clients_per_round > dataset_.clients.size()) {
    throw std::invalid_argument(
        "FederatedTrainer: clients_per_round out of range");
  }
  if (config_.eval_every == 0) {
    throw std::invalid_argument("FederatedTrainer: eval_every must be > 0");
  }
  if (config_.overcommit < 0.0) {
    throw std::invalid_argument("FederatedTrainer: overcommit must be >= 0");
  }
  if (config_.deadline_quantile < 0.0 || config_.deadline_quantile > 1.0) {
    throw std::invalid_argument(
        "FederatedTrainer: deadline_quantile must be in [0, 1]");
  }
  if (config_.max_update_norm < 0.0) {
    throw std::invalid_argument(
        "FederatedTrainer: max_update_norm must be >= 0");
  }
  // Device profiles: one stream derived from the seed, independent of the
  // training stream so that adding rounds never changes hardware assignment.
  Rng profile_rng(config_.seed ^ 0xdeadbeefcafef00dULL);
  profiles_.reserve(dataset_.clients.size());
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    profiles_.push_back(sim::DeviceProfile::sample(profile_rng));
  }
  // Uplink payload under the configured compression (the parameter count
  // comes from one throwaway factory build).
  const std::size_t param_count = model_factory_().parameter_count();
  upload_bytes_ = compressed_wire_bytes(param_count, config_.compression);
}

double FederatedTrainer::client_latency(std::size_t i) const {
  if (i >= profiles_.size()) {
    throw std::out_of_range("client_latency: bad client id");
  }
  if (config_.compression.kind != CompressionKind::None) {
    return latency_model_.round_latency_asymmetric(
        profiles_[i], dataset_.clients[i].train.size(),
        config_.latency.model_bytes, upload_bytes_);
  }
  return latency_model_.round_latency(profiles_[i],
                                      dataset_.clients[i].train.size());
}

double FederatedTrainer::client_latency_at(std::size_t i,
                                           std::size_t epoch) const {
  const double base = client_latency(i);
  if (config_.latency_jitter_sigma <= 0.0) return base;
  // One fresh generator per (seed, epoch, client): order-independent and
  // identical across strategies, like the dropout draws.
  Rng rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (epoch + 1)) ^
          (0xc2b2ae3d27d4eb4fULL * (i + 1)));
  return base * std::exp(config_.latency_jitter_sigma * rng.normal());
}

std::vector<ClientRuntimeInfo> FederatedTrainer::make_client_view() const {
  std::vector<ClientRuntimeInfo> view;
  view.reserve(dataset_.clients.size());
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    ClientRuntimeInfo info;
    info.id = i;
    info.latency_s = client_latency(i);
    info.num_samples = dataset_.clients[i].train.size();
    info.last_loss = config_.initial_loss;
    info.available = true;
    view.push_back(info);
  }
  return view;
}

FederatedTrainer::GlobalEval FederatedTrainer::evaluate_global(
    nn::Sequential& model, std::vector<double>* per_client) const {
  GlobalEval eval;
  if (per_client) per_client->assign(dataset_.clients.size(), 0.0);
  // "The overall accuracy is the average test accuracy on all devices" —
  // every device counts equally, including those currently unavailable.
  // Per-device evaluations are independent and run through the const
  // inference path in parallel; the reduction below is serial in client
  // order, so the totals do not depend on worker timing.
  std::vector<EvalResult> results(dataset_.clients.size());
  parallel_for(0, dataset_.clients.size(), [&](std::size_t i) {
    results[i] = evaluate(model, dataset_.clients[i].test);
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    eval.accuracy += results[i].accuracy;
    eval.loss += results[i].loss;
    if (per_client) (*per_client)[i] = results[i].accuracy;
  }
  const auto n = static_cast<double>(dataset_.clients.size());
  eval.accuracy /= n;
  eval.loss /= n;
  return eval;
}

TrainingHistory FederatedTrainer::run(ClientSelector& selector) {
  const auto schedule = sim::make_always_available(dataset_.clients.size());
  return run(selector, *schedule);
}

TrainingHistory FederatedTrainer::run(ClientSelector& selector,
                                      const sim::DropoutSchedule& dropout) {
  return run(selector, dropout, nullptr);
}

TrainingHistory FederatedTrainer::run(ClientSelector& selector,
                                      const sim::DropoutSchedule& dropout,
                                      const RunState* resume) {
  if (dropout.num_clients() != dataset_.clients.size()) {
    throw std::invalid_argument("run: dropout schedule arity mismatch");
  }
  nn::Sequential model = model_factory_();
  std::vector<float> global_params = model.get_parameters();

  auto view = make_client_view();
  selector.initialize(view);

  // Where this run's local training executes. The default in-process
  // dispatcher is created per run (its compression residuals start clean,
  // like the engine's old per-run residual table).
  LocalWorkConfig work;
  work.local = config_.local;
  work.fedprox = config_.algorithm == LocalAlgorithm::FedProx;
  work.fedprox_mu = config_.fedprox_mu;
  work.compression = config_.compression;
  InProcessDispatcher default_dispatcher(dataset_, model_factory_, work);
  RoundDispatcher* dispatcher =
      config_.dispatcher ? config_.dispatcher : &default_dispatcher;

  // Separate streams: selection randomness must not perturb training
  // randomness (and vice versa) so strategies stay comparable.
  Rng select_rng(config_.seed ^ 0x5e1ec70aULL);
  Rng train_rng(config_.seed ^ 0x7a314e55ULL);

  TrainingHistory history;
  sim::SimClock clock;
  double last_accuracy = 0.0;
  double last_loss = config_.initial_loss;

  // Over-selection target: how many clients each round dispatches. Clamped
  // to the population so short federations proceed with a short round
  // instead of failing.
  std::size_t dispatch_target = config_.clients_per_round;
  if (config_.overcommit > 0.0) {
    dispatch_target = std::min<std::size_t>(
        static_cast<std::size_t>(
            std::ceil(static_cast<double>(config_.clients_per_round) *
                      (1.0 + config_.overcommit))),
        dataset_.clients.size());
  }
  const bool faults_on = fault_model_.enabled();
  std::vector<sim::CircuitBreaker> breakers(
      dataset_.clients.size(), sim::CircuitBreaker(config_.breaker));

  EngineMetrics& metrics = EngineMetrics::get();

  // Crash-resume: restore everything the loop below accumulates, so the
  // remaining epochs replay bit-identically to an uninterrupted run.
  std::size_t start_epoch = 0;
  if (resume != nullptr) {
    if (resume->client_last_loss.size() != dataset_.clients.size() ||
        resume->breakers.size() != dataset_.clients.size()) {
      throw std::invalid_argument("run: checkpoint population mismatch");
    }
    if (resume->global_params.size() != global_params.size()) {
      throw std::invalid_argument("run: checkpoint model-shape mismatch");
    }
    if (resume->next_epoch > config_.rounds) {
      throw std::invalid_argument("run: checkpoint beyond configured rounds");
    }
    start_epoch = resume->next_epoch;
    global_params = resume->global_params;
    select_rng.set_state(resume->select_rng);
    train_rng.set_state(resume->train_rng);
    clock.set_now(resume->sim_time_s);
    last_accuracy = resume->last_accuracy;
    last_loss = resume->last_loss;
    for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
      view[i].last_loss = resume->client_last_loss[i];
      breakers[i].restore(resume->breakers[i]);
    }
    if (!resume->selector_state.empty()) {
      selector.load_state(resume->selector_state);
    }
    for (const RoundRecord& rec : resume->records) history.add(rec);
  }

  // Snapshot of the loop state after the round that just completed —
  // materialized only when an on_checkpoint hook asks for it.
  auto make_run_state = [&](std::size_t next_epoch) {
    RunState state;
    state.next_epoch = next_epoch;
    state.sim_time_s = clock.now();
    state.last_accuracy = last_accuracy;
    state.last_loss = last_loss;
    state.global_params = global_params;
    state.select_rng = select_rng.state();
    state.train_rng = train_rng.state();
    state.client_last_loss.reserve(view.size());
    for (const auto& info : view) {
      state.client_last_loss.push_back(info.last_loss);
    }
    state.breakers.reserve(breakers.size());
    for (const auto& b : breakers) state.breakers.push_back(b.snapshot());
    state.selector_state = selector.save_state();
    state.records = history.records();
    for (RoundRecord& rec : state.records) rec.phase = PhaseTimings{};
    return state;
  };

  for (std::size_t epoch = start_epoch; epoch < config_.rounds; ++epoch) {
    if (config_.stop_requested && config_.stop_requested()) {
      HACCS_INFO << "engine: stop requested, draining after epoch " << epoch;
      break;
    }
    obs::Span round_span("round", "fl");
    // Publish this round's context (§5i) so the transport dispatcher can
    // stamp outgoing TrainJobs and workers can parent their local_train
    // spans under this round span across the process boundary.
    if (obs::trace_enabled()) {
      obs::set_round_context({obs::process_trace_id(), round_span.id(),
                              static_cast<std::int64_t>(epoch)});
    }
    obs::StopWatch phase_clock;   // lap per phase -> RoundRecord::phase
    obs::StopWatch round_clock;   // whole-round wall time
    PhaseTimings phase;

    if (config_.on_epoch_begin) config_.on_epoch_begin(epoch);
    std::vector<std::size_t> dispatched;
    {
      obs::Span span("selection", "fl");
      const auto mask = dropout.available(epoch);
      for (std::size_t i = 0; i < view.size(); ++i) {
        // Quarantined clients (tripped breaker) are masked like dropouts.
        view[i].available = mask[i] && breakers[i].allows(epoch);
        view[i].latency_s = client_latency_at(i, epoch);
      }

      auto selected =
          selector.select(dispatch_target, view, epoch, select_rng);

      // Engine-enforced invariants: distinct, in-range, available.
      std::unordered_set<std::size_t> seen;
      for (std::size_t id : selected) {
        HACCS_CHECK_MSG(id < view.size(), "selector returned bad client id");
        HACCS_CHECK_MSG(view[id].available,
                        "selector returned unavailable client");
        if (seen.insert(id).second) dispatched.push_back(id);
      }
      HACCS_CHECK_MSG(dispatched.size() <= dispatch_target,
                      "selector returned too many clients");
    }
    phase.selection_ms = phase_clock.lap_ms();

    // Post-dispatch fault trace for this round: effective latency (straggler
    // excursions applied) and the fate of each dispatched client.
    enum class Fate { Pending, Crashed, Late };
    const std::size_t n_dispatched = dispatched.size();
    std::vector<sim::FaultEvent> faults(n_dispatched);
    std::vector<double> eff_latency(n_dispatched);
    std::vector<Fate> fate(n_dispatched, Fate::Pending);
    for (std::size_t i = 0; i < n_dispatched; ++i) {
      eff_latency[i] = view[dispatched[i]].latency_s;
      if (faults_on) {
        faults[i] = fault_model_.at(dispatched[i], epoch);
        if (faults[i].kind == sim::FaultKind::Straggler) {
          eff_latency[i] *= faults[i].latency_multiplier;
        }
      }
    }
    // Deadline: the configured quantile of this round's dispatched effective
    // latencies. The server stops waiting there; later arrivals are wasted.
    double deadline = 0.0;
    if (config_.deadline_quantile > 0.0 && n_dispatched > 0) {
      std::vector<double> sorted(eff_latency);
      std::sort(sorted.begin(), sorted.end());
      const auto idx = static_cast<std::size_t>(
          config_.deadline_quantile * static_cast<double>(sorted.size() - 1));
      deadline = sorted[idx];
    }
    for (std::size_t i = 0; i < n_dispatched; ++i) {
      if (faults[i].kind == sim::FaultKind::Crash) {
        fate[i] = Fate::Crashed;
      } else if (deadline > 0.0 && eff_latency[i] > deadline) {
        fate[i] = Fate::Late;
      }
    }
    phase.dispatch_ms = phase_clock.lap_ms();
    metrics.dispatched.inc(n_dispatched);

    RoundRecord record;
    record.epoch = epoch;
    record.dispatched = n_dispatched;
    record.deadline_s = deadline;

    std::vector<double> observed_times;  // what the server waits for
    if (n_dispatched > 0) {
      // Fastest dispatched latency anchors FedProx work scaling (planned
      // work uses base latencies — straggler excursions are unforeseen).
      double min_latency = view[dispatched.front()].latency_s;
      for (std::size_t id : dispatched) {
        min_latency = std::min(min_latency, view[id].latency_s);
      }
      // Fork the per-client training streams serially (deterministic order).
      // Crashed and late clients never deliver an update, so they get no job
      // (their fork is still consumed, keeping the streams aligned across
      // fault configurations); the rest go to the dispatcher — thread pool,
      // loopback workers, or TCP peers, all computing the same update.
      std::vector<TrainJobSpec> jobs;
      jobs.reserve(n_dispatched);
      for (std::size_t i = 0; i < n_dispatched; ++i) {
        const std::uint64_t job_seed = train_rng.next_u64();
        if (fate[i] != Fate::Pending) continue;
        const std::size_t id = dispatched[i];
        TrainJobSpec job;
        job.slot = i;
        job.client_id = id;
        job.epoch = epoch;
        job.rng_seed = job_seed;
        if (config_.algorithm == LocalAlgorithm::FedProx) {
          job.work_fraction = fedprox_work_fraction(
              view[id].latency_s / std::max(min_latency, 1e-9),
              config_.fedprox_min_work);
        }
        jobs.push_back(job);
      }
      std::vector<TrainOutcome> outcomes(n_dispatched);
      obs::Span train_span("local_train_round", "fl");
      dispatcher->execute(jobs, global_params, outcomes);
      phase.train_ms = phase_clock.lap_ms();

      // FedAvg: weighted average of the accepted updates, accumulated in
      // dispatch order so the result is independent of worker timing.
      // Crashed, late, and validation-rejected clients are wasted work.
      obs::Span aggregate_span("aggregate", "fl");
      std::vector<double> accumulated(global_params.size(), 0.0);
      double total_weight = 0.0;
      std::size_t arrived_updates = 0;  // frames received (incl. corrupt)
      for (std::size_t i = 0; i < n_dispatched; ++i) {
        const std::size_t id = dispatched[i];
        if (fate[i] == Fate::Crashed) {
          // Failure surfaces when the connection drops, mid-round.
          double observed = faults[i].crash_frac * eff_latency[i];
          if (deadline > 0.0) observed = std::min(observed, deadline);
          observed_times.push_back(observed);
          record.crashed.push_back(id);
          obs::instant("client_crash", "fault");
          metrics.crashed.inc();
          breakers[id].record_failure(epoch);
          selector.report_failure(id, epoch, FailureKind::Crash);
          continue;
        }
        if (fate[i] == Fate::Late) {
          // The server waits until the deadline, then gives up on it.
          observed_times.push_back(deadline);
          record.late.push_back(id);
          obs::instant("client_late", "fault");
          metrics.late.inc();
          selector.report_failure(id, epoch, FailureKind::Timeout);
          continue;
        }
        TrainOutcome& outcome = outcomes[i];
        if (!outcome.delivered) {
          // Transport-level failure (never on the in-process path): map it
          // onto the same accounting the simulated faults use, so selectors
          // cannot tell real wire damage from injected faults.
          switch (outcome.failure) {
            case FailureKind::Timeout:
              observed_times.push_back(deadline > 0.0 ? deadline
                                                      : eff_latency[i]);
              record.late.push_back(id);
              obs::instant("client_late", "fault");
              metrics.late.inc();
              selector.report_failure(id, epoch, FailureKind::Timeout);
              break;
            case FailureKind::CorruptUpdate:
              // A frame arrived (it counts as uplink) but its payload died.
              ++arrived_updates;
              observed_times.push_back(eff_latency[i]);
              record.rejected.push_back(id);
              obs::instant("update_rejected", "fault");
              metrics.rejected.inc();
              breakers[id].record_failure(epoch);
              selector.report_failure(id, epoch, FailureKind::CorruptUpdate);
              break;
            case FailureKind::Crash: {
              double observed = eff_latency[i];
              if (deadline > 0.0) observed = std::min(observed, deadline);
              observed_times.push_back(observed);
              record.crashed.push_back(id);
              obs::instant("client_crash", "fault");
              metrics.crashed.inc();
              breakers[id].record_failure(epoch);
              selector.report_failure(id, epoch, FailureKind::Crash);
              break;
            }
          }
          continue;
        }
        ++arrived_updates;
        if (outcome.pre_aggregated) {
          // Already folded into the dispatcher's partial sums (§5j) with
          // the engine's exact diff/validate/accumulate arithmetic — only
          // the per-slot bookkeeping remains here. The weighted sums merge
          // after this loop; total_weight still prices from the engine's
          // own dataset so the partials' weights can be cross-checked.
          observed_times.push_back(eff_latency[i]);
          const auto weight =
              static_cast<double>(dataset_.clients[id].train.size());
          total_weight += weight;
          view[id].last_loss = outcome.result.average_loss;
          breakers[id].record_success();
          selector.report_result(id, outcome.result.average_loss, epoch);
          record.selected.push_back(id);
          continue;
        }
        std::vector<float> updated = std::move(outcome.updated);
        if (faults[i].kind == sim::FaultKind::Corruption) {
          // Wire-level corruption: mangle the delta the server receives
          // (client-side state, e.g. compression residuals, stays clean).
          // Applied post-receipt — the same pure function of the fault
          // event and delta the old in-lambda path computed.
          std::vector<float> corrupted(updated.size());
          vec::diff(corrupted, updated, global_params);
          fault_model_.corrupt(faults[i], corrupted);
          for (std::size_t p = 0; p < updated.size(); ++p) {
            updated[p] = global_params[p] + corrupted[p];
          }
        }
        // Parameter delta: input to validation and gradient-direction
        // schedulers alike.
        std::vector<float> delta(updated.size());
        vec::diff(delta, updated, global_params);
        observed_times.push_back(eff_latency[i]);
        if (!update_is_valid(delta, config_.max_update_norm)) {
          HACCS_DEBUG << selector.name() << " epoch " << epoch
                      << " rejected invalid update from client " << id;
          record.rejected.push_back(id);
          obs::instant("update_rejected", "fault");
          metrics.rejected.inc();
          breakers[id].record_failure(epoch);
          selector.report_failure(id, epoch, FailureKind::CorruptUpdate);
          continue;
        }
        const auto weight =
            static_cast<double>(dataset_.clients[id].train.size());
        vec::accumulate_scaled(accumulated, updated, weight);
        total_weight += weight;
        view[id].last_loss = outcome.result.average_loss;
        breakers[id].record_success();
        selector.report_result(id, outcome.result.average_loss, epoch);
        selector.report_update(id, delta, epoch);
        record.selected.push_back(id);
      }
      if (const std::vector<PartialAggregate>* parts = dispatcher->partials()) {
        // Grouped / hierarchical aggregation: merge the per-group partial
        // sums into the accumulator in group order. Per element this is the
        // identical f64 add sequence no matter which tier performed the
        // group folds, so tree and flat grouped runs converge bitwise.
        double partial_weight = 0.0;
        for (const PartialAggregate& part : *parts) {
          partial_weight += part.weight;
          if (part.sum.empty()) continue;
          HACCS_CHECK_MSG(part.sum.size() == accumulated.size(),
                          "partial aggregate has wrong parameter count");
          for (std::size_t p = 0; p < accumulated.size(); ++p) {
            accumulated[p] += part.sum[p];
          }
        }
        // Integer sample-count weights sum exactly in f64, so any mismatch
        // is a real bookkeeping bug, not rounding.
        HACCS_CHECK_MSG(partial_weight == total_weight,
                        "partial aggregate weights disagree with the engine");
      }
      if (total_weight > 0.0) {
        for (std::size_t p = 0; p < global_params.size(); ++p) {
          global_params[p] = static_cast<float>(accumulated[p] / total_weight);
        }
      }
      phase.aggregate_ms = phase_clock.lap_ms();
      // Round byte accounting: priced from the codecs' exact frame sizes
      // (fl/protocol.hpp), identical whether the round ran in-process or
      // over a transport — crashed/late clients still received the model
      // (downlink), and every arriving frame (even a corrupt one) is
      // uplink. The obs net_bytes_* counters separately measure what a
      // transport actually moved.
      record.downlink_bytes =
          n_dispatched * train_job_frame_bytes(global_params.size());
      record.uplink_bytes =
          arrived_updates *
          update_frame_bytes(global_params.size(), config_.compression);
    }

    const double round_duration = clock.advance_round(observed_times);
    record.sim_time_s = clock.now();
    record.round_duration_s = round_duration;

    const bool eval_now =
        (epoch % config_.eval_every == 0) || (epoch + 1 == config_.rounds);
    if (eval_now) {
      obs::Span eval_span("evaluate", "fl");
      model.set_parameters(global_params);
      const bool final_round = epoch + 1 == config_.rounds;
      const auto eval = evaluate_global(
          model, final_round ? &final_per_client_accuracy_ : nullptr);
      last_accuracy = eval.accuracy;
      last_loss = eval.loss;
      metrics.evaluations.inc();
      phase.evaluate_ms = phase_clock.lap_ms();
      HACCS_DEBUG << selector.name() << " epoch " << epoch << " t="
                  << clock.now() << "s acc=" << eval.accuracy;
    }
    record.global_accuracy = last_accuracy;
    record.global_loss = last_loss;
    record.phase = phase;
    metrics.rounds.inc();
    metrics.round_ms.observe(round_clock.lap_ms());
    if (obs::events_enabled() || obs::FlightRecorder::global().enabled()) {
      // One render feeds both sinks; either probe alone still costs one
      // relaxed atomic on the flags-off path.
      const std::string event = round_event_json("sync", record);
      if (obs::events_enabled()) obs::RunEventLog::global().emit(event);
      obs::FlightRecorder::global().record_round_event(event);
    }
    history.add(std::move(record));
    if (config_.on_checkpoint) {
      config_.on_checkpoint(epoch + 1, [&] { return make_run_state(epoch + 1); });
    }
  }
  obs::clear_round_context();
  final_parameters_ = std::move(global_params);
  return history;
}

bool update_is_valid(std::span<const float> delta, double max_norm) {
  double norm_sq = 0.0;
  for (float v : delta) {
    if (!std::isfinite(v)) return false;
    norm_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  if (!std::isfinite(norm_sq)) return false;
  return max_norm <= 0.0 || norm_sq <= max_norm * max_norm;
}

}  // namespace haccs::fl
