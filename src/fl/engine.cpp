#include "src/fl/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "src/common/error.hpp"
#include "src/common/threadpool.hpp"
#include "src/common/logging.hpp"

namespace haccs::fl {

FederatedTrainer::FederatedTrainer(const data::FederatedDataset& dataset,
                                   std::function<nn::Sequential()> model_factory,
                                   EngineConfig config)
    : dataset_(dataset),
      model_factory_(std::move(model_factory)),
      config_(config),
      latency_model_(config.latency) {
  if (dataset_.clients.empty()) {
    throw std::invalid_argument("FederatedTrainer: no clients");
  }
  if (config_.clients_per_round == 0 ||
      config_.clients_per_round > dataset_.clients.size()) {
    throw std::invalid_argument(
        "FederatedTrainer: clients_per_round out of range");
  }
  if (config_.eval_every == 0) {
    throw std::invalid_argument("FederatedTrainer: eval_every must be > 0");
  }
  // Device profiles: one stream derived from the seed, independent of the
  // training stream so that adding rounds never changes hardware assignment.
  Rng profile_rng(config_.seed ^ 0xdeadbeefcafef00dULL);
  profiles_.reserve(dataset_.clients.size());
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    profiles_.push_back(sim::DeviceProfile::sample(profile_rng));
  }
  // Uplink payload under the configured compression (the parameter count
  // comes from one throwaway factory build).
  const std::size_t param_count = model_factory_().parameter_count();
  upload_bytes_ = compressed_wire_bytes(param_count, config_.compression);
}

double FederatedTrainer::client_latency(std::size_t i) const {
  if (i >= profiles_.size()) {
    throw std::out_of_range("client_latency: bad client id");
  }
  if (config_.compression.kind != CompressionKind::None) {
    return latency_model_.round_latency_asymmetric(
        profiles_[i], dataset_.clients[i].train.size(),
        config_.latency.model_bytes, upload_bytes_);
  }
  return latency_model_.round_latency(profiles_[i],
                                      dataset_.clients[i].train.size());
}

double FederatedTrainer::client_latency_at(std::size_t i,
                                           std::size_t epoch) const {
  const double base = client_latency(i);
  if (config_.latency_jitter_sigma <= 0.0) return base;
  // One fresh generator per (seed, epoch, client): order-independent and
  // identical across strategies, like the dropout draws.
  Rng rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (epoch + 1)) ^
          (0xc2b2ae3d27d4eb4fULL * (i + 1)));
  return base * std::exp(config_.latency_jitter_sigma * rng.normal());
}

std::vector<ClientRuntimeInfo> FederatedTrainer::make_client_view() const {
  std::vector<ClientRuntimeInfo> view;
  view.reserve(dataset_.clients.size());
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    ClientRuntimeInfo info;
    info.id = i;
    info.latency_s = client_latency(i);
    info.num_samples = dataset_.clients[i].train.size();
    info.last_loss = config_.initial_loss;
    info.available = true;
    view.push_back(info);
  }
  return view;
}

FederatedTrainer::GlobalEval FederatedTrainer::evaluate_global(
    nn::Sequential& model, std::vector<double>* per_client) const {
  GlobalEval eval;
  if (per_client) per_client->assign(dataset_.clients.size(), 0.0);
  // "The overall accuracy is the average test accuracy on all devices" —
  // every device counts equally, including those currently unavailable.
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    const auto r = evaluate(model, dataset_.clients[i].test);
    eval.accuracy += r.accuracy;
    eval.loss += r.loss;
    if (per_client) (*per_client)[i] = r.accuracy;
  }
  const auto n = static_cast<double>(dataset_.clients.size());
  eval.accuracy /= n;
  eval.loss /= n;
  return eval;
}

TrainingHistory FederatedTrainer::run(ClientSelector& selector) {
  const auto schedule = sim::make_always_available(dataset_.clients.size());
  return run(selector, *schedule);
}

TrainingHistory FederatedTrainer::run(ClientSelector& selector,
                                      const sim::DropoutSchedule& dropout) {
  if (dropout.num_clients() != dataset_.clients.size()) {
    throw std::invalid_argument("run: dropout schedule arity mismatch");
  }
  nn::Sequential model = model_factory_();
  std::vector<float> global_params = model.get_parameters();

  auto view = make_client_view();
  selector.initialize(view);

  // Per-client error-feedback residuals for update compression.
  std::vector<std::vector<float>> residuals(dataset_.clients.size());

  // Separate streams: selection randomness must not perturb training
  // randomness (and vice versa) so strategies stay comparable.
  Rng select_rng(config_.seed ^ 0x5e1ec70aULL);
  Rng train_rng(config_.seed ^ 0x7a314e55ULL);

  TrainingHistory history;
  sim::SimClock clock;
  double last_accuracy = 0.0;
  double last_loss = config_.initial_loss;

  for (std::size_t epoch = 0; epoch < config_.rounds; ++epoch) {
    if (config_.on_epoch_begin) config_.on_epoch_begin(epoch);
    const auto mask = dropout.available(epoch);
    for (std::size_t i = 0; i < view.size(); ++i) {
      view[i].available = mask[i];
      view[i].latency_s = client_latency_at(i, epoch);
    }

    auto selected =
        selector.select(config_.clients_per_round, view, epoch, select_rng);

    // Engine-enforced invariants: distinct, in-range, available.
    std::unordered_set<std::size_t> seen;
    std::vector<std::size_t> participants;
    for (std::size_t id : selected) {
      HACCS_CHECK_MSG(id < view.size(), "selector returned bad client id");
      HACCS_CHECK_MSG(mask[id], "selector returned unavailable client");
      if (seen.insert(id).second) participants.push_back(id);
    }
    HACCS_CHECK_MSG(participants.size() <= config_.clients_per_round,
                    "selector returned too many clients");

    std::vector<double> latencies;
    if (!participants.empty()) {
      // Fastest participant's latency anchors FedProx work scaling.
      double min_latency = view[participants.front()].latency_s;
      for (std::size_t id : participants) {
        min_latency = std::min(min_latency, view[id].latency_s);
      }
      // Fork the per-client training streams serially (deterministic order),
      // then train all participants in parallel — clients within a round are
      // independent, exactly like the real system. Each worker gets its own
      // model instance from the deterministic factory.
      std::vector<Rng> client_rngs;
      client_rngs.reserve(participants.size());
      for (std::size_t i = 0; i < participants.size(); ++i) {
        client_rngs.push_back(train_rng.fork());
      }
      std::vector<std::vector<float>> updated_params(participants.size());
      std::vector<LocalTrainResult> results(participants.size());
      parallel_for(0, participants.size(), [&](std::size_t i) {
        const std::size_t id = participants[i];
        nn::Sequential local_model = model_factory_();
        LocalTrainResult result;
        if (config_.algorithm == LocalAlgorithm::FedProx) {
          FedProxConfig prox;
          prox.local = config_.local;
          prox.mu = config_.fedprox_mu;
          prox.work_fraction = fedprox_work_fraction(
              view[id].latency_s / std::max(min_latency, 1e-9),
              config_.fedprox_min_work);
          result = train_local_fedprox(local_model, global_params,
                                       dataset_.clients[id].train, prox,
                                       client_rngs[i]);
        } else {
          local_model.set_parameters(global_params);
          result = train_local(local_model, dataset_.clients[id].train,
                               config_.local, client_rngs[i]);
        }
        auto updated = local_model.get_parameters();
        if (config_.compression.kind != CompressionKind::None) {
          // Compress the delta the client uploads; the server reconstructs
          // global + dense(delta). Residual state is per-client, and each
          // client appears at most once per round, so this is race-free.
          std::vector<float> delta(updated.size());
          for (std::size_t p = 0; p < updated.size(); ++p) {
            delta[p] = updated[p] - global_params[p];
          }
          const auto compressed =
              compress_update(delta, config_.compression, residuals[id]);
          for (std::size_t p = 0; p < updated.size(); ++p) {
            updated[p] = global_params[p] + compressed.dense[p];
          }
        }
        updated_params[i] = std::move(updated);
        results[i] = result;
      });

      // FedAvg: weighted average of locally-updated parameters, accumulated
      // in participant order so the result is independent of worker timing.
      std::vector<double> accumulated(global_params.size(), 0.0);
      double total_weight = 0.0;
      for (std::size_t i = 0; i < participants.size(); ++i) {
        const std::size_t id = participants[i];
        const auto weight =
            static_cast<double>(dataset_.clients[id].train.size());
        const auto& updated = updated_params[i];
        for (std::size_t p = 0; p < updated.size(); ++p) {
          accumulated[p] += weight * static_cast<double>(updated[p]);
        }
        total_weight += weight;
        view[id].last_loss = results[i].average_loss;
        selector.report_result(id, results[i].average_loss, epoch);
        // Parameter delta for gradient-direction schedulers.
        std::vector<float> delta(updated.size());
        for (std::size_t p = 0; p < updated.size(); ++p) {
          delta[p] = updated[p] - global_params[p];
        }
        selector.report_update(id, delta, epoch);
        latencies.push_back(view[id].latency_s);
      }
      for (std::size_t p = 0; p < global_params.size(); ++p) {
        global_params[p] = static_cast<float>(accumulated[p] / total_weight);
      }
    }

    const double round_duration = clock.advance_round(latencies);

    RoundRecord record;
    record.epoch = epoch;
    record.sim_time_s = clock.now();
    record.round_duration_s = round_duration;
    record.selected = std::move(participants);

    const bool eval_now =
        (epoch % config_.eval_every == 0) || (epoch + 1 == config_.rounds);
    if (eval_now) {
      model.set_parameters(global_params);
      const bool final_round = epoch + 1 == config_.rounds;
      const auto eval = evaluate_global(
          model, final_round ? &final_per_client_accuracy_ : nullptr);
      last_accuracy = eval.accuracy;
      last_loss = eval.loss;
      HACCS_DEBUG << selector.name() << " epoch " << epoch << " t="
                  << clock.now() << "s acc=" << eval.accuracy;
    }
    record.global_accuracy = last_accuracy;
    record.global_loss = last_loss;
    history.add(std::move(record));
  }
  final_parameters_ = std::move(global_params);
  return history;
}

}  // namespace haccs::fl
