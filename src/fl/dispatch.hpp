// The engine's dispatch seam: how one round's local-training jobs execute.
//
// FederatedTrainer describes each selected client's work as a TrainJobSpec
// (client id, forked RNG stream, FedProx work fraction) and hands the batch
// to a RoundDispatcher. Two implementations:
//   * InProcessDispatcher — the classic simulation path: train every job on
//     the thread pool in this process. This is the default and is
//     bit-identical to the pre-seam engine (pinned by
//     EngineFaults.DefaultPathBitIdenticalToPrePRPinnedRun).
//   * TransportDispatcher (net_driver.hpp) — serialize each job as a
//     TrainJob frame, ship it over a net::Transport, and collect
//     ClientUpdate frames; workers may be threads (loopback) or processes
//     (TCP).
//
// The seam carries everything a worker needs to reproduce in-process
// training exactly — notably the forked RNG seed — so WHERE a job runs
// never changes WHAT it computes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/data/partition.hpp"
#include "src/fl/client.hpp"
#include "src/fl/compression.hpp"
#include "src/fl/selector.hpp"
#include "src/nn/model.hpp"

namespace haccs::fl {

/// One client's local-training order for this round.
struct TrainJobSpec {
  std::size_t slot = 0;       ///< index into the round's dispatch vector
  std::size_t client_id = 0;
  std::size_t epoch = 0;
  std::uint64_t rng_seed = 0; ///< the engine's forked per-client stream
  double work_fraction = 1.0; ///< FedProx partial work (1.0 under FedAvg)
};

/// What came back for one job.
struct TrainOutcome {
  /// True when a usable update arrived. False means a transport-level
  /// failure (never happens in-process); `failure` says which kind.
  bool delivered = false;
  FailureKind failure = FailureKind::Crash;
  /// True when the dispatcher already folded this update into a
  /// PartialAggregate (grouped / hierarchical aggregation, §5j): `updated`
  /// is then empty and the engine does bookkeeping only. Pre-aggregated
  /// updates were validated downstream with the engine's exact arithmetic;
  /// gradient-delta selector reports and engine-side post-receipt fault
  /// corruption are unsupported on this path.
  bool pre_aggregated = false;
  /// Updated parameters (post-compression reconstruction), same length as
  /// the global vector. Empty when pre_aggregated.
  std::vector<float> updated;
  /// FedAvg weight from the wire (sample count). Transport dispatchers fill
  /// it for the grouped fold; the engine keeps pricing weights from its own
  /// dataset, so the two are cross-checked, never mixed.
  double weight = 0.0;
  LocalTrainResult result;
};

/// One group's weighted running sum — the unit hierarchical FedAvg ships
/// upstream (DESIGN.md §5j). `sum` is Σ weight_i · updated_i accumulated in
/// f64 with vec::accumulate_scaled, i.e. the engine's own FedAvg loop
/// restricted to the group's slots in slot order. Weights are integer
/// sample counts, so `weight` is exact in f64 and the total is independent
/// of how clients were grouped.
struct PartialAggregate {
  std::vector<double> sum;
  double weight = 0.0;
  std::size_t updates = 0;
};

/// Folds one reconstructed update into `agg` with the engine's exact
/// aggregation arithmetic (diff → norm validation → accumulate_scaled).
/// Returns false when the delta fails `update_is_valid(max_update_norm)`
/// — the caller maps that onto the same rejected-update accounting the
/// engine's own validation uses. `agg.sum` is lazily sized on first fold.
bool fold_into_partial(PartialAggregate& agg, std::span<const float> updated,
                       std::span<const float> global_params, double weight,
                       double max_update_norm);

/// Executes one round's jobs. `outcomes` is pre-sized to the round's
/// dispatch count; implementations fill outcomes[job.slot] for every job
/// (and only those slots).
class RoundDispatcher {
 public:
  virtual ~RoundDispatcher() = default;
  virtual void execute(std::span<const TrainJobSpec> jobs,
                       const std::vector<float>& global_params,
                       std::vector<TrainOutcome>& outcomes) = 0;

  /// Non-null when this dispatcher pre-aggregates: the last execute()'s
  /// per-group partial sums, in group order. The engine folds them into
  /// its accumulator in that order — for any grouping, the per-element add
  /// sequence is then identical to a flat dispatcher using the same groups,
  /// which is what makes hierarchical and flat grouped FedAvg bit-identical
  /// (§5j). Classic dispatchers return nullptr and are untouched.
  virtual const std::vector<PartialAggregate>* partials() const {
    return nullptr;
  }
};

/// The local-training recipe a dispatcher (or remote worker) needs; a
/// subset of EngineConfig, split out so workers can be configured without
/// the engine.
struct LocalWorkConfig {
  LocalTrainConfig local;
  bool fedprox = false;   ///< LocalAlgorithm::FedProx
  double fedprox_mu = 0.01;
  CompressionConfig compression;
};

/// Trains every job on the calling process's thread pool — the simulation's
/// classic path. Holds the per-client error-feedback residuals for update
/// compression (one instance per training run, like the engine's old
/// residual table).
class InProcessDispatcher final : public RoundDispatcher {
 public:
  InProcessDispatcher(const data::FederatedDataset& dataset,
                      std::function<nn::Sequential()> model_factory,
                      LocalWorkConfig config);

  void execute(std::span<const TrainJobSpec> jobs,
               const std::vector<float>& global_params,
               std::vector<TrainOutcome>& outcomes) override;

 private:
  const data::FederatedDataset& dataset_;
  std::function<nn::Sequential()> model_factory_;
  LocalWorkConfig config_;
  std::vector<std::vector<float>> residuals_;
};

/// Shared by both dispatchers and the remote worker: run one job's local
/// training + compression against `global_params` and return the updated
/// parameter vector (post-compression reconstruction) plus train stats.
/// `residual` is the client's error-feedback buffer. When `compressed_out`
/// is non-null and compression is on, it receives the wire-form compressed
/// update (what a remote worker serializes).
TrainOutcome run_local_job(const TrainJobSpec& job,
                           const data::Dataset& train_data,
                           nn::Sequential& model,
                           const std::vector<float>& global_params,
                           const LocalWorkConfig& config,
                           std::vector<float>& residual,
                           CompressedUpdate* compressed_out = nullptr);

}  // namespace haccs::fl
