// The engine's dispatch seam: how one round's local-training jobs execute.
//
// FederatedTrainer describes each selected client's work as a TrainJobSpec
// (client id, forked RNG stream, FedProx work fraction) and hands the batch
// to a RoundDispatcher. Two implementations:
//   * InProcessDispatcher — the classic simulation path: train every job on
//     the thread pool in this process. This is the default and is
//     bit-identical to the pre-seam engine (pinned by
//     EngineFaults.DefaultPathBitIdenticalToPrePRPinnedRun).
//   * TransportDispatcher (net_driver.hpp) — serialize each job as a
//     TrainJob frame, ship it over a net::Transport, and collect
//     ClientUpdate frames; workers may be threads (loopback) or processes
//     (TCP).
//
// The seam carries everything a worker needs to reproduce in-process
// training exactly — notably the forked RNG seed — so WHERE a job runs
// never changes WHAT it computes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/data/partition.hpp"
#include "src/fl/client.hpp"
#include "src/fl/compression.hpp"
#include "src/fl/selector.hpp"
#include "src/nn/model.hpp"

namespace haccs::fl {

/// One client's local-training order for this round.
struct TrainJobSpec {
  std::size_t slot = 0;       ///< index into the round's dispatch vector
  std::size_t client_id = 0;
  std::size_t epoch = 0;
  std::uint64_t rng_seed = 0; ///< the engine's forked per-client stream
  double work_fraction = 1.0; ///< FedProx partial work (1.0 under FedAvg)
};

/// What came back for one job.
struct TrainOutcome {
  /// True when a usable update arrived. False means a transport-level
  /// failure (never happens in-process); `failure` says which kind.
  bool delivered = false;
  FailureKind failure = FailureKind::Crash;
  /// Updated parameters (post-compression reconstruction), same length as
  /// the global vector.
  std::vector<float> updated;
  LocalTrainResult result;
};

/// Executes one round's jobs. `outcomes` is pre-sized to the round's
/// dispatch count; implementations fill outcomes[job.slot] for every job
/// (and only those slots).
class RoundDispatcher {
 public:
  virtual ~RoundDispatcher() = default;
  virtual void execute(std::span<const TrainJobSpec> jobs,
                       const std::vector<float>& global_params,
                       std::vector<TrainOutcome>& outcomes) = 0;
};

/// The local-training recipe a dispatcher (or remote worker) needs; a
/// subset of EngineConfig, split out so workers can be configured without
/// the engine.
struct LocalWorkConfig {
  LocalTrainConfig local;
  bool fedprox = false;   ///< LocalAlgorithm::FedProx
  double fedprox_mu = 0.01;
  CompressionConfig compression;
};

/// Trains every job on the calling process's thread pool — the simulation's
/// classic path. Holds the per-client error-feedback residuals for update
/// compression (one instance per training run, like the engine's old
/// residual table).
class InProcessDispatcher final : public RoundDispatcher {
 public:
  InProcessDispatcher(const data::FederatedDataset& dataset,
                      std::function<nn::Sequential()> model_factory,
                      LocalWorkConfig config);

  void execute(std::span<const TrainJobSpec> jobs,
               const std::vector<float>& global_params,
               std::vector<TrainOutcome>& outcomes) override;

 private:
  const data::FederatedDataset& dataset_;
  std::function<nn::Sequential()> model_factory_;
  LocalWorkConfig config_;
  std::vector<std::vector<float>> residuals_;
};

/// Shared by both dispatchers and the remote worker: run one job's local
/// training + compression against `global_params` and return the updated
/// parameter vector (post-compression reconstruction) plus train stats.
/// `residual` is the client's error-feedback buffer. When `compressed_out`
/// is non-null and compression is on, it receives the wire-form compressed
/// update (what a remote worker serializes).
TrainOutcome run_local_job(const TrainJobSpec& job,
                           const data::Dataset& train_data,
                           nn::Sequential& model,
                           const std::vector<float>& global_params,
                           const LocalWorkConfig& config,
                           std::vector<float>& residual,
                           CompressedUpdate* compressed_out = nullptr);

}  // namespace haccs::fl
