#include "src/fl/protocol.hpp"

#include <stdexcept>
#include <string>

namespace haccs::fl {

net::UpdateKind to_update_kind(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::None: return net::UpdateKind::Dense;
    case CompressionKind::TopK: return net::UpdateKind::SparseTopK;
    case CompressionKind::Int8: return net::UpdateKind::Int8;
  }
  throw std::invalid_argument("to_update_kind: bad kind");
}

CompressionKind to_compression_kind(net::UpdateKind kind) {
  switch (kind) {
    case net::UpdateKind::Dense: return CompressionKind::None;
    case net::UpdateKind::SparseTopK: return CompressionKind::TopK;
    case net::UpdateKind::Int8: return CompressionKind::Int8;
  }
  throw std::invalid_argument("to_compression_kind: bad kind");
}

net::UpdatePayload make_update_payload(const CompressedUpdate& compressed,
                                       std::size_t n,
                                       const CompressionConfig& config) {
  net::UpdatePayload payload;
  payload.kind = to_update_kind(config.kind);
  payload.size = n;
  switch (config.kind) {
    case CompressionKind::None:
      payload.dense = compressed.dense;
      break;
    case CompressionKind::TopK:
      payload.indices = compressed.topk_indices;
      payload.values = compressed.topk_values;
      break;
    case CompressionKind::Int8:
      payload.codes = compressed.int8_codes;
      payload.lo = compressed.int8_lo;
      payload.step = compressed.int8_step;
      break;
  }
  // The consistency contract: what the latency model priced is what ships.
  const std::size_t actual = net::update_body_bytes(payload);
  const std::size_t priced = compressed_wire_bytes(n, config);
  if (actual != priced) {
    throw std::logic_error(
        "make_update_payload: codec emits " + std::to_string(actual) +
        " bytes but compressed_wire_bytes prices " + std::to_string(priced));
  }
  return payload;
}

std::size_t train_job_frame_bytes(std::size_t n) {
  return net::train_job_overhead_bytes() + n * sizeof(float);
}

std::size_t update_frame_bytes(std::size_t n,
                               const CompressionConfig& config) {
  return net::client_update_overhead_bytes() + compressed_wire_bytes(n, config);
}

}  // namespace haccs::fl
