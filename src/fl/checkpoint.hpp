// Crash-resume run checkpoints (DESIGN.md §5g).
//
// A RunState is everything the round engine accumulates across epochs that
// cannot be recomputed from (dataset, config, seed): the global parameters,
// the round index, both RNG stream states, per-client observed losses,
// circuit-breaker states, the selector's opaque learned-state blob, and the
// round records produced so far. Restoring a RunState and running the
// remaining rounds produces bit-identical records to the uninterrupted run
// (modulo wall-clock phase timings, which are zeroed in the checkpoint).
//
// On disk a checkpoint is a single net::MessageType::Checkpoint frame — the
// same CRC-verified framing the wire uses — whose payload starts with its
// own magic + version so model-parameter checkpoints (nn/serialize.hpp) and
// run checkpoints fail loudly when fed to the wrong loader. Writes are
// atomic: encode to `path + ".tmp"`, fsync, then rename over `path`, so a
// kill -9 mid-write leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/fl/history.hpp"
#include "src/sim/faults.hpp"

namespace haccs::fl {

/// Version of the RunState payload encoding. Bump on layout changes; the
/// loader rejects unknown versions with a distinct error.
inline constexpr std::uint16_t kRunStateVersion = 1;

struct RunState {
  /// The first epoch the resumed run should execute (last completed + 1).
  std::size_t next_epoch = 0;
  double sim_time_s = 0.0;
  double last_accuracy = 0.0;
  double last_loss = 0.0;
  std::vector<float> global_params;
  Rng::State select_rng;
  Rng::State train_rng;
  /// Most recent observed training loss per client (engine view state).
  std::vector<double> client_last_loss;
  /// Per-client circuit-breaker state, same order as the clients.
  std::vector<sim::CircuitBreaker::Snapshot> breakers;
  /// ClientSelector::save_state() blob (empty for stateless selectors).
  std::vector<std::uint8_t> selector_state;
  /// Rounds completed so far, with phase timings zeroed (wall-clock noise
  /// has no business in a deterministic resume artifact).
  std::vector<RoundRecord> records;
};

/// Serializes a RunState as one framed, CRC'd byte buffer (the exact bytes
/// save_run_state writes to disk).
std::vector<std::uint8_t> encode_run_state(const RunState& state);

/// Parses a buffer produced by encode_run_state. Throws std::runtime_error
/// with distinct messages for truncation, CRC mismatch, a non-checkpoint
/// frame, a model-parameter (non-run) checkpoint, and version skew.
RunState decode_run_state(std::span<const std::uint8_t> bytes);

/// Atomically writes `state` to `path` (temp file + rename). Observes
/// `checkpoint_write_seconds` and bumps `checkpoints_written_total`.
void save_run_state(const RunState& state, const std::string& path);

/// Reads and decodes a checkpoint written by save_run_state.
RunState load_run_state(const std::string& path);

}  // namespace haccs::fl
