#include "src/fl/fedprox.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/common/error.hpp"
#include "src/nn/loss.hpp"

namespace haccs::fl {

LocalTrainResult train_local_fedprox(nn::Sequential& model,
                                     std::span<const float> global_params,
                                     const data::Dataset& dataset,
                                     const FedProxConfig& config, Rng& rng) {
  if (dataset.empty()) {
    throw std::invalid_argument("train_local_fedprox: empty dataset");
  }
  if (config.mu < 0.0) {
    throw std::invalid_argument("train_local_fedprox: mu must be >= 0");
  }
  if (config.work_fraction <= 0.0 || config.work_fraction > 1.0) {
    throw std::invalid_argument(
        "train_local_fedprox: work_fraction must be in (0, 1]");
  }
  if (global_params.size() != model.parameter_count()) {
    throw std::invalid_argument(
        "train_local_fedprox: global parameter size mismatch");
  }
  model.set_parameters(global_params);
  model.set_training(true);
  nn::SgdOptimizer optimizer(config.local.sgd);

  // Adds mu * (w - w_global) to the accumulated gradients — the gradient of
  // the proximal term (mu/2)||w - w_global||^2.
  const auto mu = static_cast<float>(config.mu);
  auto add_proximal_gradient = [&] {
    if (mu == 0.0f) return;
    std::size_t offset = 0;
    for (std::size_t li = 0; li < model.layer_count(); ++li) {
      auto params = model.layer(li).parameters();
      auto grads = model.layer(li).gradients();
      for (std::size_t pi = 0; pi < params.size(); ++pi) {
        auto p = params[pi]->data();
        auto g = grads[pi]->data();
        for (std::size_t i = 0; i < p.size(); ++i) {
          g[i] += mu * (p[i] - global_params[offset + i]);
        }
        offset += p.size();
      }
    }
    HACCS_CHECK(offset == global_params.size());
  };

  std::vector<std::size_t> indices(dataset.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  const std::size_t batches_per_epoch =
      (dataset.size() + config.local.batch_size - 1) / config.local.batch_size;
  const std::size_t total_batches = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             config.work_fraction *
             static_cast<double>(config.local.epochs * batches_per_epoch))));

  LocalTrainResult result;
  double loss_sum = 0.0;
  std::size_t remaining = total_batches;
  while (remaining > 0) {
    rng.shuffle(indices);
    for (std::size_t start = 0;
         start < indices.size() && remaining > 0;
         start += config.local.batch_size, --remaining) {
      const std::size_t end =
          std::min(indices.size(), start + config.local.batch_size);
      const std::span<const std::size_t> batch(indices.data() + start,
                                               end - start);
      const Tensor features = dataset.batch_features(batch);
      const auto labels = dataset.batch_labels(batch);

      model.zero_grad();
      const Tensor logits = model.forward(features);
      auto loss = nn::softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      add_proximal_gradient();
      optimizer.step(model);

      loss_sum += loss.loss;
      result.final_loss = loss.loss;
      ++result.batches;
    }
  }
  result.average_loss = loss_sum / static_cast<double>(result.batches);
  return result;
}

double fedprox_work_fraction(double latency_ratio, double min_fraction) {
  if (latency_ratio < 1.0) latency_ratio = 1.0;
  if (min_fraction <= 0.0 || min_fraction > 1.0) {
    throw std::invalid_argument("fedprox_work_fraction: bad min_fraction");
  }
  // Inverse scaling, floored: a device 2x slower does half the work (but
  // never less than min_fraction of it).
  return std::max(min_fraction, 1.0 / latency_ratio);
}

}  // namespace haccs::fl
