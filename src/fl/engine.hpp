// The federated training round engine.
//
// Orchestrates one full simulated FL run (paper §II-A system model):
//   per epoch: dropout mask -> selector picks k clients -> each selected
//   client trains locally from the global parameters -> weighted FedAvg
//   aggregation -> the simulated clock advances by the straggler's latency
//   -> periodic global evaluation over every client's local test set.
//
// Everything stochastic is derived from EngineConfig::seed, so two runs with
// different selectors but the same seed see identical device profiles,
// dropout masks, and data — isolating the selection strategy as the only
// difference, exactly as the paper's methodology requires.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/data/partition.hpp"
#include "src/fl/checkpoint.hpp"
#include "src/fl/client.hpp"
#include "src/fl/compression.hpp"
#include "src/fl/dispatch.hpp"
#include "src/fl/fedprox.hpp"
#include "src/fl/history.hpp"
#include "src/fl/selector.hpp"
#include "src/sim/dropout.hpp"
#include "src/sim/faults.hpp"
#include "src/sim/latency.hpp"
#include "src/sim/profile.hpp"

namespace haccs::fl {

/// How selected clients compute their local update.
enum class LocalAlgorithm {
  FedAvg,   ///< plain local SGD (the paper's training path)
  FedProx,  ///< proximal objective + latency-scaled partial work (§VI)
};

struct EngineConfig {
  std::size_t rounds = 200;
  std::size_t clients_per_round = 10;
  LocalTrainConfig local;
  LocalAlgorithm algorithm = LocalAlgorithm::FedAvg;
  /// Uplink update compression (None = ship dense float32 updates). The
  /// latency model prices the compressed uplink, so compression directly
  /// shortens slow clients' rounds.
  CompressionConfig compression;
  /// FedProx proximal coefficient (used when algorithm == FedProx).
  double fedprox_mu = 0.01;
  /// Minimum work fraction a straggler performs under FedProx.
  double fedprox_min_work = 0.3;
  sim::LatencyModelConfig latency;
  /// Evaluate the global model every `eval_every` rounds (and on the final
  /// round). Evaluation reads every client's local test set.
  std::size_t eval_every = 5;
  /// Loss value assumed for clients never yet trained (ln(10) ~ the initial
  /// cross-entropy of a 10-class model).
  double initial_loss = 2.302585;
  /// Log-normal per-round latency jitter: each client's latency this round
  /// is base * exp(sigma * z) with z ~ N(0,1) drawn per (client, epoch).
  /// Real testbeds (the paper's included) see exactly this fluctuation from
  /// network and load variation; it is what rotates the "fastest device in
  /// the cluster" over time (§IV-E). 0 disables.
  double latency_jitter_sigma = 0.2;
  std::uint64_t seed = 1;
  /// Post-dispatch fault injection (crashes, corruption, straggler tails).
  /// Disabled by default; with it disabled and overcommit == 0 the engine is
  /// bit-identical to the fault-unaware engine for the same seed.
  sim::FaultModelConfig faults{.crash_rate = 0.0};
  /// Over-selection: dispatch ceil(clients_per_round * (1 + overcommit))
  /// clients (clamped to the population) and aggregate whatever lands before
  /// the deadline. 0 disables — exactly clients_per_round are dispatched.
  double overcommit = 0.0;
  /// Round deadline, as a quantile of the dispatched clients' effective
  /// latencies this round; updates arriving later are discarded (wasted
  /// work) and the server stops waiting at the deadline. 0 disables — the
  /// round waits for its straggler, the classic synchronous semantics.
  double deadline_quantile = 0.0;
  /// Reject updates whose parameter-delta L2 norm exceeds this bound
  /// (0 = no norm bound). Non-finite (NaN/Inf) deltas are always rejected —
  /// a rejected update is logged and skipped, never aggregated.
  double max_update_norm = 0.0;
  /// Per-client circuit breaker: a client whose dispatches fail (crash or
  /// corrupt update) this many consecutive times is quarantined for an
  /// exponentially growing number of epochs.
  sim::CircuitBreaker::Config breaker;
  /// Invoked at the start of every epoch, before selection. Used by drift
  /// experiments to mutate client data mid-training (§IV-C's changing
  /// distributions) — the engine reads datasets afresh each round.
  std::function<void(std::size_t epoch)> on_epoch_begin;
  /// Where local training runs (non-owning; must outlive the trainer's run).
  /// nullptr = in-process on the thread pool, bit-identical to the classic
  /// engine. Point at a fl::TransportDispatcher (net_driver.hpp) to route
  /// rounds through a net::Transport — loopback threads or TCP processes.
  RoundDispatcher* dispatcher = nullptr;
  /// Materializes the full resumable state (checkpoint.hpp) for the round
  /// that just completed. Calling it is what costs: a deep copy of the
  /// parameters, the selector blob, and the whole record history so far.
  using RunStateFactory = std::function<RunState()>;
  /// Crash-resume hook: invoked after every completed round with the epoch
  /// the next round would run and a factory for the resumable state.
  /// Callers decide cadence and persistence (e.g. save_run_state every Nth
  /// round); rounds whose hook never calls the factory pay nothing, so a
  /// cadenced checkpointer is O(history) per save, not per round. Unset =
  /// no checkpointing, zero overhead.
  std::function<void(std::size_t next_epoch, const RunStateFactory&)>
      on_checkpoint;
  /// Graceful-drain hook: polled at the start of every round; returning
  /// true ends the run after the last completed round (the history simply
  /// stops early). Lets a serving loop drain on SIGTERM instead of dying
  /// mid-round. Unset = run all rounds.
  std::function<bool()> stop_requested;
};

class FederatedTrainer {
 public:
  /// `model_factory` must return an identically-initialized model on every
  /// call (capture a fixed seed inside). The trainer samples one device
  /// profile per client from `config.seed`.
  FederatedTrainer(const data::FederatedDataset& dataset,
                   std::function<nn::Sequential()> model_factory,
                   EngineConfig config);

  /// Runs a full training simulation with the given strategy and
  /// availability schedule. Each call starts from a fresh model and clock.
  TrainingHistory run(ClientSelector& selector,
                      const sim::DropoutSchedule& dropout);

  /// Convenience overload with no dropout.
  TrainingHistory run(ClientSelector& selector);

  /// Crash-resume entry point: restores `resume` (epoch cursor, parameters,
  /// RNG streams, clock, breaker and selector state, prior records) and
  /// runs the remaining rounds. The returned history contains ALL rounds —
  /// restored plus newly executed — and is bit-identical to an
  /// uninterrupted run's history modulo wall-clock phase timings. `resume`
  /// must come from a run with the same dataset, config, and selector type;
  /// nullptr behaves exactly like the plain overload.
  TrainingHistory run(ClientSelector& selector,
                      const sim::DropoutSchedule& dropout,
                      const RunState* resume);

  const std::vector<sim::DeviceProfile>& profiles() const { return profiles_; }
  const sim::LatencyModel& latency_model() const { return latency_model_; }

  /// Base (expected) round latency of client i (profile + local data size).
  double client_latency(std::size_t i) const;

  /// Latency of client i in a specific epoch, including the seeded
  /// log-normal jitter. Pure function of (config.seed, epoch, i).
  double client_latency_at(std::size_t i, std::size_t epoch) const;

  /// Per-client test accuracy of the most recent run's final model.
  const std::vector<double>& final_per_client_accuracy() const {
    return final_per_client_accuracy_;
  }

  /// Flat global parameters after the most recent run (empty before any
  /// run). Pair with the same model factory to reconstruct the model, or
  /// write with nn::save_parameters via a factory-built model.
  const std::vector<float>& final_parameters() const {
    return final_parameters_;
  }

  /// The runtime view handed to selectors (all-available mask) — exposed so
  /// selection strategies can be initialized/tested without a full run.
  std::vector<ClientRuntimeInfo> make_client_view() const;

 private:
  struct GlobalEval {
    double accuracy = 0.0;
    double loss = 0.0;
  };
  GlobalEval evaluate_global(nn::Sequential& model,
                             std::vector<double>* per_client = nullptr) const;

  const data::FederatedDataset& dataset_;
  std::function<nn::Sequential()> model_factory_;
  EngineConfig config_;
  sim::LatencyModel latency_model_;
  sim::FaultModel fault_model_;
  std::vector<sim::DeviceProfile> profiles_;
  std::vector<double> final_per_client_accuracy_;
  std::vector<float> final_parameters_;
  std::size_t upload_bytes_ = 0;
};

/// Server-side update validation: true when every element of `delta` is
/// finite and (when max_norm > 0) its L2 norm is within max_norm. Both
/// engines call this before aggregation so a corrupted or diverged client
/// cannot poison the global model.
bool update_is_valid(std::span<const float> delta, double max_norm);

}  // namespace haccs::fl
