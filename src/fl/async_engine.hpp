// Asynchronous federated training (buffered aggregation, FedBuff-style).
//
// The paper's engine is synchronous: a round waits for its straggler. The
// async engine removes that barrier — an extension in the direction of
// §IV-C's asynchronous summary updates, and the natural point of comparison
// for any straggler-mitigation scheduler:
//
//   * the server keeps `max_in_flight` clients training concurrently;
//   * each dispatched client trains from the global model version current
//     at dispatch and finishes after its (jittered) simulated latency;
//   * completed updates land in a buffer; every `buffer_size` arrivals the
//     server aggregates them into the global model, discounting each update
//     by its staleness: weight ∝ samples / (1 + versions_behind)^alpha;
//   * freed slots are refilled immediately via the ClientSelector (asked
//     for one client at a time, in-flight devices masked unavailable).
//
// Time is a discrete-event simulation over completion events, so the fast
// devices' updates flow at their own pace — with heterogeneous hardware the
// wall-clock win over the synchronous engine is exactly the straggler gap.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/partition.hpp"
#include "src/fl/client.hpp"
#include "src/fl/history.hpp"
#include "src/fl/selector.hpp"
#include "src/sim/dropout.hpp"
#include "src/sim/faults.hpp"
#include "src/sim/latency.hpp"
#include "src/sim/profile.hpp"

namespace haccs::fl {

struct AsyncEngineConfig {
  /// Total number of server aggregations (the async analogue of rounds).
  std::size_t aggregations = 200;
  /// Concurrent client trainings the server sustains.
  std::size_t max_in_flight = 10;
  /// Updates buffered per aggregation.
  std::size_t buffer_size = 5;
  /// Server learning rate applied to the aggregated delta.
  double server_lr = 1.0;
  /// Staleness discount exponent: weight ∝ 1 / (1 + staleness)^alpha.
  double staleness_alpha = 0.5;
  LocalTrainConfig local;
  sim::LatencyModelConfig latency;
  /// Evaluate every N aggregations (and at the last one).
  std::size_t eval_every = 5;
  double initial_loss = 2.302585;
  double latency_jitter_sigma = 0.2;
  std::uint64_t seed = 1;
  /// Post-dispatch fault injection. A mid-round crash frees the client's
  /// in-flight slot at the crash instant and triggers immediate re-dispatch;
  /// corrupted updates are rejected before entering the buffer. Disabled by
  /// default — the engine is then bit-identical to the fault-unaware one.
  sim::FaultModelConfig faults{.crash_rate = 0.0};
  /// Update-validation norm bound (0 = reject non-finite only).
  double max_update_norm = 0.0;
};

class AsyncFederatedTrainer {
 public:
  AsyncFederatedTrainer(const data::FederatedDataset& dataset,
                        std::function<nn::Sequential()> model_factory,
                        AsyncEngineConfig config);

  /// Runs the event-driven simulation. Each record corresponds to one
  /// aggregation: epoch = aggregation index, sim_time = event time,
  /// round_duration = time since the previous aggregation, selected = the
  /// clients whose updates were consumed.
  TrainingHistory run(ClientSelector& selector,
                      const sim::DropoutSchedule& dropout);
  TrainingHistory run(ClientSelector& selector);

  const std::vector<sim::DeviceProfile>& profiles() const { return profiles_; }
  double client_latency(std::size_t i) const;

  const std::vector<float>& final_parameters() const {
    return final_parameters_;
  }

 private:
  const data::FederatedDataset& dataset_;
  std::function<nn::Sequential()> model_factory_;
  AsyncEngineConfig config_;
  sim::LatencyModel latency_model_;
  sim::FaultModel fault_model_;
  std::vector<sim::DeviceProfile> profiles_;
  std::vector<float> final_parameters_;
};

}  // namespace haccs::fl
