// Richer evaluation: confusion matrices and per-class accuracy.
//
// The paper's Fig. 1 reading ("the accuracy drop ... depends on whether the
// group's class labels are present in participating groups") is a per-class
// statement; these helpers make it measurable directly.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/nn/model.hpp"

namespace haccs::fl {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  void add(std::int64_t truth, std::int64_t predicted);

  std::size_t classes() const { return classes_; }
  /// counts[truth][predicted].
  std::size_t at(std::size_t truth, std::size_t predicted) const;
  std::size_t total() const;

  /// Overall fraction correct (0 when empty).
  double accuracy() const;
  /// Recall per class: correct_c / total_c (0 for classes never seen).
  std::vector<double> per_class_recall() const;
  /// Precision per class: correct_c / predicted_c (0 if never predicted).
  std::vector<double> per_class_precision() const;

  /// Merges another matrix (same class count) into this one.
  void merge(const ConfusionMatrix& other);

 private:
  std::size_t classes_;
  std::vector<std::size_t> counts_;  // classes x classes
};

/// Evaluates `model` on `dataset` and returns the confusion matrix.
/// Batches run in parallel through the const inference path; each worker
/// fills its own matrix and the integer counts are merged at the end, so the
/// result does not depend on the worker count.
ConfusionMatrix confusion_matrix(const nn::Sequential& model,
                                 const data::Dataset& dataset,
                                 std::size_t batch_size = 128);

/// Gini coefficient of per-client participation counts in [0, 1]:
/// 0 = perfectly even participation, ->1 = all work on one device. The
/// scheduling-bias audit metric behind the paper's Table III discussion.
double participation_gini(std::span<const std::size_t> selection_counts);

/// Population standard deviation of per-client accuracies — the fairness
/// spread behind Fig. 11's fastest-vs-slowest gaps.
double accuracy_spread(std::span<const double> per_client_accuracy);

}  // namespace haccs::fl
