// Update compression for the uplink: top-k sparsification and linear int8
// quantization, with client-side error feedback.
//
// Transfer time dominates slow clients' round latency (Table II bandwidths
// go down to 1 Mbps), so shrinking the model update directly attacks the
// same straggler problem HACCS schedules around — and composes with it: the
// selector decides WHO sends, the compressor decides HOW MANY BYTES. The
// engine wires compressed sizes into the latency model so the TTA effect is
// measurable (bench/ablation_compression).
//
// Error feedback (Seide et al.; Stich et al.) keeps the residual of each
// round's compression and adds it to the next update, preserving
// convergence under biased compressors like top-k.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace haccs::fl {

enum class CompressionKind {
  None,
  TopK,   ///< keep the k largest-magnitude coordinates
  Int8,   ///< per-tensor linear quantization to 8 bits
};

struct CompressionConfig {
  CompressionKind kind = CompressionKind::None;
  /// For TopK: fraction of coordinates kept (0 < fraction <= 1).
  double topk_fraction = 0.1;
  /// Enables client-side error feedback (residual accumulation).
  bool error_feedback = true;
};

/// A compressed update plus the metadata needed to size its transfer.
///
/// Besides the dense reconstruction, the compressor emits the wire-form
/// payload (the exact fields net's ClientUpdate codec serializes): TopK's
/// kept (index, value) pairs, Int8's quantization codes and dequant scalars.
/// Reconstructing from the wire fields reproduces `dense` bit-exactly — the
/// invariant that makes a transported round identical to an in-process one.
struct CompressedUpdate {
  /// Dense reconstruction of the update (what the server applies).
  std::vector<float> dense;
  /// Bytes this update's tensor body occupies on the wire. Always equals
  /// compressed_wire_bytes(n, config) — the latency model's price.
  std::size_t wire_bytes = 0;

  // Wire form (which members are filled depends on the kind):
  std::vector<std::uint32_t> topk_indices;  ///< TopK: kept coordinates
  std::vector<float> topk_values;           ///< TopK: kept values
  std::vector<std::uint8_t> int8_codes;     ///< Int8: one code per coord
  float int8_lo = 0.0f;    ///< Int8: dequantization offset
  float int8_step = 0.0f;  ///< Int8: dequantization step
};

/// Compresses `update` (dense, length n). `residual` carries error feedback
/// across rounds: pass the same buffer every round (it is resized on first
/// use); ignored when config.error_feedback is false.
CompressedUpdate compress_update(std::span<const float> update,
                                 const CompressionConfig& config,
                                 std::vector<float>& residual);

/// Wire size of an uncompressed update of length n.
std::size_t dense_wire_bytes(std::size_t n);

/// Wire size after compression (without running the compressor): used by
/// the latency model to price the uplink.
std::size_t compressed_wire_bytes(std::size_t n, const CompressionConfig& config);

}  // namespace haccs::fl
