// The protocol driver: FederatedTrainer rounds over a net::Transport.
//
// Three pieces:
//   * TransportDispatcher — the server side of the dispatch seam. Serializes
//     each TrainJobSpec as a TrainJob frame, fans jobs out over one or more
//     worker transports (client_id % workers), and collects ClientUpdate
//     frames with per-message timeouts. Transport failures surface as
//     undelivered outcomes: Corrupt -> FailureKind::CorruptUpdate, Timeout
//     -> Timeout, Closed -> Crash — the engine routes them into
//     ClientSelector::report_failure exactly like simulated faults.
//   * WorkerLoop — the worker side: receive TrainJob, run the identical
//     local training (run_local_job with the job's forked RNG seed), reply
//     with a ClientUpdate whose tensor body is the priced wire form. Holds
//     per-client compression residuals across rounds, like the in-process
//     dispatcher does.
//   * LoopbackCluster — in-process worker threads over loopback transports:
//     the full protocol (encode, CRC, decode) at memory speed. A loopback
//     run is bit-identical to the direct in-process run for the same seed
//     (pinned in tests/net_test.cpp); examples/haccs_server + haccs_worker
//     run the same driver across real processes over TCP.
//
// Corrupt-frame attribution: a frame that fails its CRC cannot name its
// client, but workers process jobs strictly FIFO per transport, so the
// damage is charged to the oldest outstanding job on that transport.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/fl/dispatch.hpp"
#include "src/net/loopback.hpp"
#include "src/net/messages.hpp"
#include "src/net/transport.hpp"

namespace haccs::fl {

struct TransportDispatcherConfig {
  LocalWorkConfig work;
  /// Per-frame send deadline, milliseconds (<0 = wait forever).
  int send_timeout_ms = 30000;
  /// Per-frame receive deadline while collecting updates (<0 = forever).
  int recv_timeout_ms = 30000;
};

/// Server side: ships TrainJob frames, collects ClientUpdate frames.
/// `workers` are non-owning; jobs are routed by client_id % workers.size().
class TransportDispatcher final : public RoundDispatcher {
 public:
  TransportDispatcher(std::vector<net::Transport*> workers,
                      TransportDispatcherConfig config);

  void execute(std::span<const TrainJobSpec> jobs,
               const std::vector<float>& global_params,
               std::vector<TrainOutcome>& outcomes) override;

 private:
  /// Handles one frame received from worker `w`; returns true when it
  /// settled an outstanding job.
  bool handle_frame(std::size_t w, const net::Frame& frame,
                    std::span<const TrainJobSpec> jobs,
                    const std::vector<float>& global_params,
                    std::vector<TrainOutcome>& outcomes);
  void fail_front(std::size_t w, FailureKind kind,
                  std::vector<TrainOutcome>& outcomes);
  void fail_all(std::size_t w, FailureKind kind,
                std::vector<TrainOutcome>& outcomes);

  std::vector<net::Transport*> workers_;
  TransportDispatcherConfig config_;
  /// Outstanding job indices (into the execute() jobs span) per worker, in
  /// send order — the FIFO that corrupt frames are attributed against.
  std::vector<std::deque<std::size_t>> outstanding_;
};

struct WorkerLoopConfig {
  std::uint32_t worker_id = 0;
  /// Receive deadline while idle (<0 = wait forever for the next job).
  int recv_timeout_ms = -1;
  /// Exit run() when an idle receive times out (otherwise keep waiting).
  bool exit_on_timeout = false;
};

/// Worker side: serves TrainJob frames until Shutdown or the transport
/// closes. One WorkerLoop instance must persist across rounds — it owns the
/// per-client error-feedback residuals.
class WorkerLoop {
 public:
  WorkerLoop(const data::FederatedDataset& dataset,
             std::function<nn::Sequential()> model_factory,
             net::Transport& transport, WorkerLoopConfig config = {});

  /// Serves until shutdown; returns the number of jobs completed.
  std::size_t run();

 private:
  void handle_train_job(const net::TrainJobMsg& msg);

  const data::FederatedDataset& dataset_;
  std::function<nn::Sequential()> model_factory_;
  net::Transport& transport_;
  WorkerLoopConfig config_;
  std::vector<std::vector<float>> residuals_;
};

/// In-process worker fleet over loopback transports. Spawns one thread per
/// worker, each running a WorkerLoop on the B end of a loopback pair; the
/// A ends are handed to a TransportDispatcher via server_transports().
/// The destructor sends Shutdown to every worker and joins the threads.
class LoopbackCluster {
 public:
  LoopbackCluster(const data::FederatedDataset& dataset,
                  std::function<nn::Sequential()> model_factory,
                  std::size_t num_workers,
                  const net::LoopbackOptions& options = {});
  ~LoopbackCluster();

  LoopbackCluster(const LoopbackCluster&) = delete;
  LoopbackCluster& operator=(const LoopbackCluster&) = delete;

  std::vector<net::Transport*> server_transports() const;

  /// Jobs completed by worker `i` so far (valid after shutdown()/dtor join).
  std::size_t jobs_served(std::size_t i) const { return served_.at(i); }

  /// Sends Shutdown and joins all workers (idempotent; dtor calls it).
  void shutdown();

 private:
  std::vector<net::LoopbackPair> pairs_;
  std::vector<std::unique_ptr<WorkerLoop>> loops_;
  std::vector<std::thread> threads_;
  std::vector<std::size_t> served_;
  bool stopped_ = false;
};

}  // namespace haccs::fl
