// The protocol driver: FederatedTrainer rounds over a net::Transport.
//
// Three pieces:
//   * TransportDispatcher — the server side of the dispatch seam. Serializes
//     each TrainJobSpec as a TrainJob frame, fans jobs out over one or more
//     worker transports (client_id % workers), and collects ClientUpdate
//     frames with per-message timeouts. Transport failures surface as
//     undelivered outcomes: Corrupt -> FailureKind::CorruptUpdate, Timeout
//     -> Timeout, Closed -> Crash — the engine routes them into
//     ClientSelector::report_failure exactly like simulated faults.
//   * WorkerLoop — the worker side: receive TrainJob, run the identical
//     local training (run_local_job with the job's forked RNG seed), reply
//     with a ClientUpdate whose tensor body is the priced wire form. Holds
//     per-client compression residuals across rounds (and across serve()
//     calls, so a reconnecting worker resumes its error-feedback state).
//   * LoopbackCluster — in-process worker threads over loopback transports:
//     the full protocol (encode, CRC, decode) at memory speed. A loopback
//     run is bit-identical to the direct in-process run for the same seed
//     (pinned in tests/net_test.cpp); examples/haccs_server + haccs_worker
//     run the same driver across real processes over TCP.
//
// Serving mode (DESIGN.md §5g): with heartbeat_timeout_ms, quorum_fraction,
// or reacquire configured, the dispatcher collects with a round-robin poll
// over live workers — any inbound frame (including Heartbeat) refreshes a
// worker's liveness deadline, a silent worker is escalated to Crash, and the
// round commits once a quorum of updates has landed instead of blocking on
// stragglers. With all three left at their defaults the dispatcher runs the
// original strictly-serial collection path, byte-identical to before.
//
// Corrupt-frame attribution: a frame that fails its CRC cannot name its
// client, but workers process jobs strictly FIFO per transport, so the
// damage is charged to the oldest outstanding job on that transport.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fl/dispatch.hpp"
#include "src/net/chaos.hpp"
#include "src/net/loopback.hpp"
#include "src/net/messages.hpp"
#include "src/net/transport.hpp"
#include "src/obs/trace.hpp"

namespace haccs::fl {

/// Live-status mirror for the exposition endpoint (DESIGN.md §5i): the
/// dispatcher publishes its round/worker state into relaxed atomics as it
/// works and the status server's thread renders to_json() on demand — no
/// lock is ever taken on the round loop. A null board pointer in the
/// dispatcher config (the default) skips even the relaxed stores, keeping
/// the flags-off serving path untouched.
class ServingStatusBoard {
 public:
  struct Worker {
    std::atomic<std::int64_t> last_heard_ms{-1};  ///< steady clock, ms
    std::atomic<bool> alive{true};
    std::atomic<std::uint64_t> outstanding{0};
    std::atomic<std::uint64_t> updates{0};  ///< delivered updates, lifetime
    std::atomic<std::uint64_t> sessions{0}; ///< reacquired transports
    /// Outstanding-frame depth toward this peer (outbound frames queued
    /// behind a slow connection) — the backpressure gauge §5j's fan-in
    /// server enforces its shedding cap against. Blocking transports leave
    /// it 0; the mid-tier aggregator mirrors FanInServer::outbound_queued.
    std::atomic<std::uint64_t> queued{0};
  };

  explicit ServingStatusBoard(std::size_t num_workers)
      : workers_(num_workers) {}

  Worker& worker(std::size_t w) { return workers_[w]; }
  std::size_t num_workers() const { return workers_.size(); }

  std::atomic<std::uint64_t> round{0};
  std::atomic<std::uint64_t> dispatched{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> quorum_target{0};
  std::atomic<bool> quorum_met{false};
  std::atomic<bool> collecting{false};

  /// {"round":..,"workers":[{"id":..,"last_heard_age_ms":..},..]} — worker
  /// ages computed against the steady clock at call time (-1 = never heard).
  std::string to_json() const;

 private:
  std::vector<Worker> workers_;  ///< sized once; atomics live in place
};

struct TransportDispatcherConfig {
  LocalWorkConfig work;
  /// Per-frame send deadline, milliseconds (<0 = wait forever).
  int send_timeout_ms = 30000;
  /// Per-frame receive deadline while collecting updates (<0 = forever).
  /// In serving mode this is the whole-round collection budget instead.
  int recv_timeout_ms = 30000;
  /// Serving-mode liveness: a worker that has been silent (no update, no
  /// heartbeat, nothing) for this long while it owes updates is declared
  /// dead — its outstanding jobs fail as Crash and the engine's circuit
  /// breaker / selector see the failure. 0 disables.
  int heartbeat_timeout_ms = 0;
  /// Quorum commit (< 1 enables): once this fraction of the round's
  /// dispatched jobs have delivered updates, wait quorum_grace_ms longer,
  /// then fail the stragglers as Timeout instead of blocking the round.
  /// Pair with EngineConfig::overcommit so lost updates are re-covered by
  /// over-selection instead of shrinking the aggregate.
  double quorum_fraction = 1.0;
  int quorum_grace_ms = 0;
  /// Replacement-transport factory: when a worker's transport has died, the
  /// dispatcher calls reacquire(w) at the next round's fan-out; a non-null
  /// return (non-owning, caller keeps ownership) replaces the dead
  /// transport. Unset = dead workers stay dead.
  std::function<net::Transport*(std::size_t)> reacquire;
  /// Receives decoded TraceShard frames (workers' span buffers, §5i).
  /// Unset = shards are drained and dropped.
  std::function<void(net::TraceShardMsg&&)> on_trace_shard;
  /// Live-status mirror for /status; non-owning, may be null (default).
  ServingStatusBoard* status_board = nullptr;
  /// Liveness edge callback: fired with (worker, alive=false) when a worker
  /// is declared dead and (worker, alive=true) when a reacquired transport
  /// brings it back. Called from the dispatcher's (engine) thread. Feeds
  /// the live re-cluster path (§5h phase 2). Unset = no callbacks.
  std::function<void(std::size_t, bool)> on_liveness;
  /// Grouped aggregation (§5j): > 0 folds delivered updates into this many
  /// per-group PartialAggregates (group of a client = its worker's
  /// contiguous aggregator slice; workers.size() must divide evenly) instead
  /// of returning raw updates to the engine. A flat run with agg_groups == A
  /// aggregates bit-identically to an A-aggregator tree run — the
  /// byte-equality baseline. 0 (default) leaves the classic path untouched.
  std::size_t agg_groups = 0;
  /// Update-norm validation threshold for the grouped fold — must match
  /// EngineConfig::max_update_norm so rejection decisions are identical.
  double max_update_norm = 0.0;
};

/// Server side: ships TrainJob frames, collects ClientUpdate frames.
/// `workers` are non-owning; jobs are routed by client_id % workers.size().
class TransportDispatcher final : public RoundDispatcher {
 public:
  TransportDispatcher(std::vector<net::Transport*> workers,
                      TransportDispatcherConfig config);

  void execute(std::span<const TrainJobSpec> jobs,
               const std::vector<float>& global_params,
               std::vector<TrainOutcome>& outcomes) override;

  const std::vector<PartialAggregate>* partials() const override {
    return config_.agg_groups > 0 ? &partials_ : nullptr;
  }

 private:
  bool serving_enabled() const {
    return config_.heartbeat_timeout_ms > 0 || config_.quorum_fraction < 1.0 ||
           static_cast<bool>(config_.reacquire);
  }

  /// Handles one frame received from worker `w`; returns true when it
  /// settled an outstanding job.
  bool handle_frame(std::size_t w, const net::Frame& frame,
                    std::span<const TrainJobSpec> jobs,
                    const std::vector<float>& global_params,
                    std::vector<TrainOutcome>& outcomes);
  void fail_front(std::size_t w, FailureKind kind,
                  std::vector<TrainOutcome>& outcomes);
  void fail_all(std::size_t w, FailureKind kind,
                std::vector<TrainOutcome>& outcomes);

  /// Mirrors worker `w`'s queue depth / liveness onto the status board
  /// (no-op with a null board).
  void sync_board(std::size_t w);
  /// Stamps worker `w`'s last-heard clock on the status board.
  void board_note_heard(std::size_t w);

  /// The original strictly-serial collection (flags-off path, byte-identical
  /// to the pre-serving driver).
  void collect_serial(std::span<const TrainJobSpec> jobs,
                      const std::vector<float>& global_params,
                      std::vector<TrainOutcome>& outcomes);
  /// Serving-mode collection: round-robin slice polling with heartbeat
  /// deadlines and quorum commit.
  void collect_serving(std::span<const TrainJobSpec> jobs,
                       const std::vector<float>& global_params,
                       std::vector<TrainOutcome>& outcomes);

  /// Grouped post-collection fold (§5j): walks the round's jobs in slot
  /// order and folds each delivered update into its group's partial with
  /// the engine's exact arithmetic; validation rejects become undelivered
  /// CorruptUpdate outcomes, the same accounting the engine's own
  /// validation produces.
  void fold_groups(std::span<const TrainJobSpec> jobs,
                   const std::vector<float>& global_params,
                   std::vector<TrainOutcome>& outcomes);
  std::size_t group_of(std::size_t client_id) const;
  /// Flips dead_[w] and fires the on_liveness edge callback on change.
  void set_dead(std::size_t w, bool dead);

  std::vector<net::Transport*> workers_;
  TransportDispatcherConfig config_;
  /// Outstanding job indices (into the execute() jobs span) per worker, in
  /// send order — the FIFO that corrupt frames are attributed against.
  std::vector<std::deque<std::size_t>> outstanding_;
  /// Workers whose transport returned Closed; candidates for reacquire.
  std::vector<bool> dead_;
  /// Per-group partial sums from the last execute() (agg_groups mode).
  std::vector<PartialAggregate> partials_;
};

/// Why a WorkerLoop::serve() call returned.
enum class WorkerRunEnd {
  Shutdown,     ///< server sent an orderly Shutdown frame
  Closed,       ///< transport closed / connection lost — caller may reconnect
  IdleTimeout,  ///< exit_on_timeout hit with no work pending
};

struct WorkerLoopConfig {
  std::uint32_t worker_id = 0;
  /// Receive deadline while idle (<0 = wait forever for the next job).
  int recv_timeout_ms = -1;
  /// Exit serve() when an idle receive times out (otherwise keep waiting).
  bool exit_on_timeout = false;
  /// Serving mode: send a Heartbeat frame this often so the server can tell
  /// "alive but training" from "gone". 0 disables (no heartbeat thread).
  int heartbeat_interval_ms = 0;
};

/// Worker side: serves TrainJob frames until Shutdown or the transport
/// closes. One WorkerLoop instance must persist across rounds — and across
/// reconnects — because it owns the per-client error-feedback residuals.
class WorkerLoop {
 public:
  WorkerLoop(const data::FederatedDataset& dataset,
             std::function<nn::Sequential()> model_factory,
             WorkerLoopConfig config = {});

  /// Serves on `transport` until shutdown, close, or idle timeout. Callable
  /// repeatedly (with a fresh transport after a reconnect); residuals and
  /// the served-job count carry over.
  WorkerRunEnd serve(net::Transport& transport);

  /// Jobs completed across all serve() calls so far.
  std::size_t jobs_served() const { return served_; }

 private:
  void handle_train_job(net::Transport& transport,
                        const net::TrainJobMsg& msg);
  /// Sends the buffered spans as one TraceShard frame and clears the
  /// buffer; no-op when nothing was recorded.
  void ship_trace_shard(net::Transport& transport);

  const data::FederatedDataset& dataset_;
  std::function<nn::Sequential()> model_factory_;
  WorkerLoopConfig config_;
  std::vector<std::vector<float>> residuals_;
  std::size_t served_ = 0;
  /// Last epoch seen in a TrainJob — echoed in heartbeats for diagnostics.
  std::atomic<std::uint64_t> last_epoch_{0};
  /// Spans recorded for trace-context-carrying jobs (§5i). Gated on the
  /// RECEIVED context, not local trace flags: only the server decides
  /// whether a run is traced, and an untraced run records nothing here.
  obs::TraceBuffer trace_;
  std::uint64_t trace_id_ = 0;
  std::int64_t trace_epoch_ = -1;  ///< epoch the buffer's spans belong to
  /// Last received context, republished in heartbeat trailers (relaxed
  /// atomics: the heartbeat thread reads while the serve loop writes).
  std::atomic<std::uint64_t> last_trace_id_{0};
  std::atomic<std::uint64_t> last_parent_span_{0};
  std::atomic<std::int64_t> last_round_{-1};
};

/// Knobs for LoopbackCluster beyond plain loopback options.
struct LoopbackClusterOptions {
  net::LoopbackOptions loopback;
  /// When enabled, BOTH directions of every worker link are wrapped in a
  /// ChaosTransport (per-direction forked seeds), so the dispatcher and the
  /// workers each face a hostile wire.
  net::ChaosOptions chaos;
  /// Forwarded to each WorkerLoop (serving-mode heartbeats).
  int worker_heartbeat_interval_ms = 0;
};

/// In-process worker fleet over loopback transports. Spawns one thread per
/// worker, each running a WorkerLoop on the B end of a loopback pair; the
/// A ends are handed to a TransportDispatcher via server_transports().
/// The destructor sends Shutdown to every worker and joins the threads.
class LoopbackCluster {
 public:
  LoopbackCluster(const data::FederatedDataset& dataset,
                  std::function<nn::Sequential()> model_factory,
                  std::size_t num_workers,
                  const net::LoopbackOptions& options = {});
  LoopbackCluster(const data::FederatedDataset& dataset,
                  std::function<nn::Sequential()> model_factory,
                  std::size_t num_workers,
                  const LoopbackClusterOptions& options);
  ~LoopbackCluster();

  LoopbackCluster(const LoopbackCluster&) = delete;
  LoopbackCluster& operator=(const LoopbackCluster&) = delete;

  std::vector<net::Transport*> server_transports() const;

  /// Jobs completed by worker `i` so far (valid after shutdown()/dtor join).
  std::size_t jobs_served(std::size_t i) const {
    return loops_.at(i)->jobs_served();
  }

  /// Sends Shutdown, closes the server-side transports (queued frames are
  /// still delivered — and if chaos ate the Shutdown, the close itself ends
  /// the worker), and joins all workers. Idempotent; the dtor calls it.
  void shutdown();

 private:
  std::vector<std::unique_ptr<net::Transport>> server_side_;
  std::vector<std::unique_ptr<net::Transport>> worker_side_;
  std::vector<std::unique_ptr<WorkerLoop>> loops_;
  std::vector<std::thread> threads_;
  bool stopped_ = false;
};

}  // namespace haccs::fl
