#include "src/fl/selector.hpp"

namespace haccs::fl {

void ClientSelector::initialize(const std::vector<ClientRuntimeInfo>&) {}

void ClientSelector::report_result(std::size_t, double, std::size_t) {}

void ClientSelector::report_update(std::size_t, std::span<const float>,
                                   std::size_t) {}

void ClientSelector::report_failure(std::size_t, std::size_t, FailureKind) {}

std::vector<std::uint8_t> ClientSelector::save_state() const { return {}; }

void ClientSelector::load_state(std::span<const std::uint8_t>) {}

std::vector<std::size_t> available_ids(
    const std::vector<ClientRuntimeInfo>& clients) {
  std::vector<std::size_t> ids;
  for (const auto& c : clients) {
    if (c.available) ids.push_back(c.id);
  }
  return ids;
}

}  // namespace haccs::fl
