#include "src/fl/run_summary.hpp"

#include <cstdio>

#include "src/obs/metrics.hpp"

namespace haccs::fl {

void append_summary_history(obs::JsonObject& o,
                            const TrainingHistory& history) {
  o.field("final_accuracy", history.final_accuracy())
      .field("best_accuracy", history.best_accuracy())
      .field("total_sim_time_s", history.total_time())
      .field("uplink_bytes", history.total_uplink_bytes())
      .field("downlink_bytes", history.total_downlink_bytes());
}

void append_summary_counters(obs::JsonObject& o) {
  auto counter = [](const char* name) {
    return obs::Registry::global().counter(name).value();
  };
  o.field("net_reconnects", counter("net_reconnects_total"))
      .field("heartbeats_missed", counter("heartbeats_missed_total"))
      .field("rounds_quorum_degraded",
             counter("rounds_quorum_degraded_total"))
      .field("checkpoints_written", counter("checkpoints_written_total"))
      .field("scale_candidate_pairs", counter("scale_candidate_pairs_total"))
      .field("scale_exact_distances", counter("scale_exact_distances_total"))
      .field("scale_incremental_reclusters",
             counter("scale_incremental_reclusters_total"));
}

bool write_summary_json(const obs::JsonObject& o, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", o.str().c_str());
  std::fclose(f);
  std::fprintf(stderr, "wrote run summary to %s\n", path.c_str());
  return true;
}

}  // namespace haccs::fl
