#include "src/fl/net_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "src/common/logging.hpp"
#include "src/fl/protocol.hpp"
#include "src/net/wire.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"

namespace haccs::fl {

namespace {

/// Per-worker poll slice in the serving collection loop: short enough that
/// one silent worker cannot starve the others' liveness checks.
constexpr int kServeSliceMs = 10;

struct ServingMetrics {
  obs::Counter& heartbeats_missed =
      obs::Registry::global().counter("heartbeats_missed_total");
  obs::Counter& quorum_degraded =
      obs::Registry::global().counter("rounds_quorum_degraded_total");
  obs::Counter& reconnects =
      obs::Registry::global().counter("net_reconnects_total");

  static ServingMetrics& get() {
    static ServingMetrics metrics;
    return metrics;
  }
};

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string ServingStatusBoard::to_json() const {
  const std::int64_t now = steady_ms();
  std::string out = "{\"round\":" + std::to_string(round.load());
  out += ",\"collecting\":";
  out += collecting.load() ? "true" : "false";
  out += ",\"dispatched\":" + std::to_string(dispatched.load());
  out += ",\"delivered\":" + std::to_string(delivered.load());
  out += ",\"quorum_target\":" + std::to_string(quorum_target.load());
  out += ",\"quorum_met\":";
  out += quorum_met.load() ? "true" : "false";
  out += ",\"workers\":[";
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = workers_[w];
    if (w > 0) out += ',';
    const std::int64_t heard = worker.last_heard_ms.load();
    out += "{\"id\":" + std::to_string(w);
    out += ",\"alive\":";
    out += worker.alive.load() ? "true" : "false";
    out += ",\"outstanding\":" + std::to_string(worker.outstanding.load());
    out += ",\"updates\":" + std::to_string(worker.updates.load());
    out += ",\"sessions\":" + std::to_string(worker.sessions.load());
    out += ",\"queued\":" + std::to_string(worker.queued.load());
    out += ",\"last_heard_age_ms\":" +
           std::to_string(heard < 0 ? -1 : now - heard);
    out += '}';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// TransportDispatcher

TransportDispatcher::TransportDispatcher(std::vector<net::Transport*> workers,
                                         TransportDispatcherConfig config)
    : workers_(std::move(workers)), config_(std::move(config)) {
  if (workers_.empty()) {
    throw std::invalid_argument("TransportDispatcher: no workers");
  }
  if (config_.quorum_fraction <= 0.0 || config_.quorum_fraction > 1.0) {
    throw std::invalid_argument(
        "TransportDispatcher: quorum_fraction must be in (0, 1]");
  }
  if (config_.agg_groups > 0 &&
      (config_.agg_groups > workers_.size() ||
       workers_.size() % config_.agg_groups != 0)) {
    throw std::invalid_argument(
        "TransportDispatcher: agg_groups must evenly divide the worker count");
  }
  outstanding_.resize(workers_.size());
  dead_.assign(workers_.size(), false);
}

void TransportDispatcher::set_dead(std::size_t w, bool dead) {
  if (dead_[w] == dead) return;
  dead_[w] = dead;
  if (config_.on_liveness) config_.on_liveness(w, !dead);
}

std::size_t TransportDispatcher::group_of(std::size_t client_id) const {
  return (client_id % workers_.size()) /
         (workers_.size() / config_.agg_groups);
}

void TransportDispatcher::fold_groups(std::span<const TrainJobSpec> jobs,
                                      const std::vector<float>& global_params,
                                      std::vector<TrainOutcome>& outcomes) {
  partials_.assign(config_.agg_groups, PartialAggregate{});
  // Jobs are already in slot order, so each group's fold visits its slots
  // in the same order a mid-tier aggregator would (its SelectNotice lists
  // the subtree's clients in slot order) — the bit-identity invariant.
  for (const TrainJobSpec& job : jobs) {
    TrainOutcome& out = outcomes[job.slot];
    if (!out.delivered || out.updated.empty()) continue;
    PartialAggregate& part = partials_[group_of(job.client_id)];
    if (fold_into_partial(part, out.updated, global_params, out.weight,
                          config_.max_update_norm)) {
      out.pre_aggregated = true;
    } else {
      // Identical accounting to the engine's own validation rejection.
      out.delivered = false;
      out.failure = FailureKind::CorruptUpdate;
    }
    out.updated.clear();
    out.updated.shrink_to_fit();
  }
}

void TransportDispatcher::sync_board(std::size_t w) {
  ServingStatusBoard* board = config_.status_board;
  if (!board) return;
  auto& worker = board->worker(w);
  worker.outstanding.store(outstanding_[w].size(), std::memory_order_relaxed);
  worker.alive.store(!dead_[w], std::memory_order_relaxed);
}

void TransportDispatcher::board_note_heard(std::size_t w) {
  if (ServingStatusBoard* board = config_.status_board) {
    board->worker(w).last_heard_ms.store(steady_ms(),
                                         std::memory_order_relaxed);
  }
}

void TransportDispatcher::fail_front(std::size_t w, FailureKind kind,
                                     std::vector<TrainOutcome>& outcomes) {
  auto& queue = outstanding_[w];
  if (queue.empty()) return;
  TrainOutcome& out = outcomes[queue.front()];
  out.delivered = false;
  out.failure = kind;
  queue.pop_front();
  sync_board(w);
}

void TransportDispatcher::fail_all(std::size_t w, FailureKind kind,
                                   std::vector<TrainOutcome>& outcomes) {
  while (!outstanding_[w].empty()) fail_front(w, kind, outcomes);
}

bool TransportDispatcher::handle_frame(std::size_t w, const net::Frame& frame,
                                       std::span<const TrainJobSpec> jobs,
                                       const std::vector<float>& global_params,
                                       std::vector<TrainOutcome>& outcomes) {
  if (frame.type == net::MessageType::TraceShard) {
    // A worker's span buffer riding home ahead of its next update (§5i).
    if (config_.on_trace_shard) {
      try {
        config_.on_trace_shard(net::decode_trace_shard(frame));
      } catch (const net::WireError& e) {
        HACCS_WARN << "undecodable TraceShard from " << workers_[w]->peer()
                   << ": " << e.what();
      }
    }
    return false;
  }
  if (frame.type != net::MessageType::ClientUpdate) {
    // Heartbeats and other control traffic are not update settlements.
    return false;
  }
  net::ClientUpdateMsg msg;
  try {
    msg = net::decode_client_update(frame);
  } catch (const net::WireError& e) {
    // CRC passed but the payload is still unparseable (e.g. a
    // version-skewed peer): charge it like wire damage.
    HACCS_WARN << "undecodable ClientUpdate from " << workers_[w]->peer()
               << ": " << e.what();
    fail_front(w, FailureKind::CorruptUpdate, outcomes);
    return true;
  }
  // Workers answer strictly FIFO, so this is normally the queue front; the
  // search keeps a reordering (or duplicated) peer from mis-settling jobs.
  auto& queue = outstanding_[w];
  const auto it = std::find_if(
      queue.begin(), queue.end(), [&](std::size_t slot) {
        return jobs[slot].client_id == msg.client_id &&
               jobs[slot].epoch == msg.epoch;
      });
  if (it == queue.end()) return false;  // stale or duplicate — drop
  const std::size_t job_index = *it;
  queue.erase(it);

  TrainOutcome& out = outcomes[jobs[job_index].slot];
  if (msg.update.size != global_params.size()) {
    out.delivered = false;
    out.failure = FailureKind::CorruptUpdate;
    return true;
  }
  // Payload semantics (messages.hpp): Dense carries the updated parameters
  // themselves; compressed kinds carry the delta, reconstructed with the
  // same arithmetic the in-process path uses — bit-identical either way.
  std::vector<float> updated;
  if (msg.update.kind == net::UpdateKind::Dense) {
    updated = std::move(msg.update.dense);
  } else {
    const auto dense = msg.update.to_dense();
    updated.resize(dense.size());
    for (std::size_t p = 0; p < dense.size(); ++p) {
      updated[p] = global_params[p] + dense[p];
    }
  }
  out.delivered = true;
  out.updated = std::move(updated);
  out.weight = static_cast<double>(msg.sample_count);
  out.result.average_loss = msg.average_loss;
  out.result.final_loss = msg.final_loss;
  out.result.batches = static_cast<std::size_t>(msg.batches);
  if (ServingStatusBoard* board = config_.status_board) {
    board->delivered.fetch_add(1, std::memory_order_relaxed);
    board->worker(w).updates.fetch_add(1, std::memory_order_relaxed);
    sync_board(w);
  }
  return true;
}

void TransportDispatcher::execute(std::span<const TrainJobSpec> jobs,
                                  const std::vector<float>& global_params,
                                  std::vector<TrainOutcome>& outcomes) {
  for (auto& queue : outstanding_) queue.clear();

  if (ServingStatusBoard* board = config_.status_board) {
    board->round.store(jobs.empty() ? 0 : jobs.front().epoch,
                       std::memory_order_relaxed);
    board->dispatched.store(jobs.size(), std::memory_order_relaxed);
    board->delivered.store(0, std::memory_order_relaxed);
    board->quorum_met.store(false, std::memory_order_relaxed);
    board->quorum_target.store(
        config_.quorum_fraction < 1.0
            ? static_cast<std::uint64_t>(
                  std::ceil(config_.quorum_fraction *
                            static_cast<double>(jobs.size())))
            : jobs.size(),
        std::memory_order_relaxed);
    board->collecting.store(true, std::memory_order_relaxed);
    for (std::size_t w = 0; w < workers_.size(); ++w) sync_board(w);
  }

  // Snapshot the engine's round context once per fan-out: every TrainJob of
  // the round carries the same parent span. Untraced runs send the invalid
  // context, which the codec encodes as zero extra bytes.
  const obs::TraceContext trace_ctx =
      obs::trace_enabled() ? obs::round_context() : obs::TraceContext{};

  // Serving mode: give workers that died in an earlier round a fresh
  // transport before fanning out, so a reconnected process rejoins the
  // rotation instead of eating a round of Crash failures.
  if (config_.reacquire) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!dead_[w]) continue;
      if (net::Transport* fresh = config_.reacquire(w)) {
        workers_[w] = fresh;
        set_dead(w, false);
        ServingMetrics::get().reconnects.inc();
        if (ServingStatusBoard* board = config_.status_board) {
          board->worker(w).sessions.fetch_add(1, std::memory_order_relaxed);
          sync_board(w);
        }
        HACCS_INFO << "dispatcher: worker " << w << " reacquired ("
                   << fresh->peer() << ")";
      }
    }
  }

  // Fan out. After each send, drain whatever already came back so neither
  // side ever sits blocked on a full buffer (a worker may be trying to send
  // its update while we are still sending jobs).
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const TrainJobSpec& job = jobs[j];
    const std::size_t w = job.client_id % workers_.size();
    net::TrainJobMsg msg;
    msg.epoch = job.epoch;
    msg.client_id = static_cast<std::uint32_t>(job.client_id);
    msg.rng_seed = job.rng_seed;
    msg.algorithm = config_.work.fedprox ? 1 : 0;
    msg.fedprox_mu = config_.work.fedprox_mu;
    msg.work_fraction = job.work_fraction;
    msg.local_epochs = config_.work.local.epochs;
    msg.batch_size = config_.work.local.batch_size;
    msg.learning_rate = config_.work.local.sgd.learning_rate;
    msg.momentum = config_.work.local.sgd.momentum;
    msg.weight_decay = config_.work.local.sgd.weight_decay;
    msg.compression_kind =
        static_cast<std::uint8_t>(config_.work.compression.kind);
    msg.topk_fraction = config_.work.compression.topk_fraction;
    msg.error_feedback = config_.work.compression.error_feedback ? 1 : 0;
    msg.params = global_params;
    msg.trace = trace_ctx;

    auto status =
        workers_[w]->send(net::encode_train_job(msg), config_.send_timeout_ms);
    if (status == net::TransportStatus::Closed && config_.reacquire &&
        !dead_[w]) {
      // The transport died between rounds (or mid-fan-out): try one
      // immediate replacement before charging the job.
      if (net::Transport* fresh = config_.reacquire(w)) {
        workers_[w] = fresh;
        ServingMetrics::get().reconnects.inc();
        HACCS_INFO << "dispatcher: worker " << w << " reacquired mid-round ("
                   << fresh->peer() << ")";
        status = workers_[w]->send(net::encode_train_job(msg),
                                   config_.send_timeout_ms);
      }
    }
    if (status == net::TransportStatus::Ok) {
      outstanding_[w].push_back(j);
      sync_board(w);
    } else {
      if (status == net::TransportStatus::Closed) set_dead(w, true);
      TrainOutcome& out = outcomes[job.slot];
      out.delivered = false;
      out.failure = status == net::TransportStatus::Timeout
                        ? FailureKind::Timeout
                        : FailureKind::Crash;
      sync_board(w);
    }
    for (;;) {
      if (outstanding_[w].empty()) break;
      net::Frame ready;
      const auto rs = workers_[w]->recv(&ready, 0);
      if (rs == net::TransportStatus::Ok) {
        board_note_heard(w);
        handle_frame(w, ready, jobs, global_params, outcomes);
        continue;
      }
      if (rs == net::TransportStatus::Corrupt) {
        board_note_heard(w);
        fail_front(w, FailureKind::CorruptUpdate, outcomes);
        continue;
      }
      break;  // Timeout = nothing ready yet; Closed is settled below
    }
  }

  if (serving_enabled()) {
    collect_serving(jobs, global_params, outcomes);
  } else {
    collect_serial(jobs, global_params, outcomes);
  }

  if (config_.agg_groups > 0) fold_groups(jobs, global_params, outcomes);

  if (ServingStatusBoard* board = config_.status_board) {
    board->collecting.store(false, std::memory_order_relaxed);
    for (std::size_t w = 0; w < workers_.size(); ++w) sync_board(w);
  }
}

void TransportDispatcher::collect_serial(std::span<const TrainJobSpec> jobs,
                                         const std::vector<float>& global_params,
                                         std::vector<TrainOutcome>& outcomes) {
  // Collect everything still outstanding, worker by worker.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    while (!outstanding_[w].empty()) {
      net::Frame frame;
      const auto status = workers_[w]->recv(&frame, config_.recv_timeout_ms);
      if (status == net::TransportStatus::Ok) {
        board_note_heard(w);
        handle_frame(w, frame, jobs, global_params, outcomes);
        continue;
      }
      if (status == net::TransportStatus::Corrupt) {
        board_note_heard(w);
        fail_front(w, FailureKind::CorruptUpdate, outcomes);
        continue;
      }
      if (status == net::TransportStatus::Timeout) {
        HACCS_WARN << "recv timeout from " << workers_[w]->peer() << "; "
                   << outstanding_[w].size() << " job(s) abandoned";
        fail_all(w, FailureKind::Timeout, outcomes);
      } else {
        HACCS_WARN << "transport to " << workers_[w]->peer() << " closed; "
                   << outstanding_[w].size() << " job(s) abandoned";
        fail_all(w, FailureKind::Crash, outcomes);
      }
      break;
    }
  }
}

void TransportDispatcher::collect_serving(
    std::span<const TrainJobSpec> jobs,
    const std::vector<float>& global_params,
    std::vector<TrainOutcome>& outcomes) {
  ServingMetrics& metrics = ServingMetrics::get();
  const std::int64_t start = steady_ms();
  std::vector<std::int64_t> last_heard(workers_.size(), start);

  auto outstanding_total = [&] {
    std::size_t n = 0;
    for (const auto& queue : outstanding_) n += queue.size();
    return n;
  };
  auto delivered_count = [&] {
    std::size_t n = 0;
    for (const TrainJobSpec& job : jobs) {
      if (outcomes[job.slot].delivered) ++n;
    }
    return n;
  };
  const std::size_t quorum_target =
      config_.quorum_fraction < 1.0
          ? static_cast<std::size_t>(
                std::ceil(config_.quorum_fraction *
                          static_cast<double>(jobs.size())))
          : jobs.size();
  std::int64_t quorum_deadline = -1;  // set once the quorum first lands

  while (outstanding_total() > 0) {
    const std::int64_t now = steady_ms();
    // Whole-round collection budget: fail the remainder rather than hang.
    if (config_.recv_timeout_ms >= 0 && now - start > config_.recv_timeout_ms) {
      HACCS_WARN << "serving: round collection budget ("
                 << config_.recv_timeout_ms << " ms) exhausted; "
                 << outstanding_total() << " job(s) abandoned";
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        fail_all(w, FailureKind::Timeout, outcomes);
      }
      break;
    }
    // Quorum commit: enough updates have landed — give stragglers one grace
    // window, then cut the round loose.
    if (config_.quorum_fraction < 1.0 && delivered_count() >= quorum_target) {
      if (quorum_deadline < 0) {
        quorum_deadline = now + config_.quorum_grace_ms;
        if (ServingStatusBoard* board = config_.status_board) {
          board->quorum_met.store(true, std::memory_order_relaxed);
        }
      }
      if (now >= quorum_deadline) {
        const std::size_t abandoned = outstanding_total();
        if (abandoned > 0) {
          metrics.quorum_degraded.inc();
          obs::FlightRecorder::global().note_quorum_degraded();
          HACCS_INFO << "serving: quorum (" << quorum_target << "/"
                     << jobs.size() << ") reached; abandoning " << abandoned
                     << " straggler job(s)";
          for (std::size_t w = 0; w < workers_.size(); ++w) {
            fail_all(w, FailureKind::Timeout, outcomes);
          }
        }
        break;
      }
    }
    // One short poll slice per worker that still owes updates. Any frame —
    // updates and heartbeats alike — refreshes the worker's liveness clock.
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (outstanding_[w].empty()) continue;
      net::Frame frame;
      const auto status = workers_[w]->recv(&frame, kServeSliceMs);
      switch (status) {
        case net::TransportStatus::Ok:
          last_heard[w] = steady_ms();
          board_note_heard(w);
          handle_frame(w, frame, jobs, global_params, outcomes);
          break;
        case net::TransportStatus::Corrupt:
          // A damaged frame is still proof of life.
          last_heard[w] = steady_ms();
          board_note_heard(w);
          fail_front(w, FailureKind::CorruptUpdate, outcomes);
          break;
        case net::TransportStatus::Closed:
          HACCS_WARN << "transport to " << workers_[w]->peer() << " closed; "
                     << outstanding_[w].size() << " job(s) abandoned";
          fail_all(w, FailureKind::Crash, outcomes);
          set_dead(w, true);
          sync_board(w);
          break;
        case net::TransportStatus::Timeout:
          if (config_.heartbeat_timeout_ms > 0 &&
              steady_ms() - last_heard[w] > config_.heartbeat_timeout_ms) {
            metrics.heartbeats_missed.inc();
            HACCS_WARN << "worker " << w << " (" << workers_[w]->peer()
                       << ") silent for > " << config_.heartbeat_timeout_ms
                       << " ms; declaring dead, "
                       << outstanding_[w].size() << " job(s) abandoned";
            fail_all(w, FailureKind::Crash, outcomes);
            set_dead(w, true);
            sync_board(w);
          }
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// WorkerLoop

WorkerLoop::WorkerLoop(const data::FederatedDataset& dataset,
                       std::function<nn::Sequential()> model_factory,
                       WorkerLoopConfig config)
    : dataset_(dataset),
      model_factory_(std::move(model_factory)),
      config_(config),
      residuals_(dataset.clients.size()) {}

void WorkerLoop::handle_train_job(net::Transport& transport,
                                  const net::TrainJobMsg& msg) {
  if (msg.client_id >= dataset_.clients.size()) {
    HACCS_WARN << "TrainJob for unknown client " << msg.client_id
               << " (have " << dataset_.clients.size() << ")";
    return;  // no reply; the server's deadline covers it
  }
  LocalWorkConfig work;
  work.local.epochs = static_cast<std::size_t>(msg.local_epochs);
  work.local.batch_size = static_cast<std::size_t>(msg.batch_size);
  work.local.sgd.learning_rate = msg.learning_rate;
  work.local.sgd.momentum = msg.momentum;
  work.local.sgd.weight_decay = msg.weight_decay;
  work.fedprox = msg.algorithm != 0;
  work.fedprox_mu = msg.fedprox_mu;
  work.compression.kind = static_cast<CompressionKind>(msg.compression_kind);
  work.compression.topk_fraction = msg.topk_fraction;
  work.compression.error_feedback = msg.error_feedback != 0;

  TrainJobSpec job;
  job.client_id = msg.client_id;
  job.epoch = static_cast<std::size_t>(msg.epoch);
  job.rng_seed = msg.rng_seed;
  job.work_fraction = msg.work_fraction;

  // Worker-side child span (§5i): gated on the RECEIVED context, so only a
  // tracing server makes workers read clocks or buffer events — a worker's
  // own trace flags never enter the decision, and untraced runs stay
  // byte-identical.
  const bool traced = msg.trace.valid();
  const std::uint64_t train_begin_ns = traced ? obs::now_ns() : 0;

  nn::Sequential model = model_factory_();
  CompressedUpdate compressed;
  TrainOutcome outcome =
      run_local_job(job, dataset_.clients[msg.client_id].train, model,
                    msg.params, work, residuals_[msg.client_id], &compressed);

  if (traced) {
    obs::TraceEvent span;
    span.name = "local_train";
    span.category = "fl";
    span.tid = obs::thread_id();
    span.ts_ns = train_begin_ns;
    span.dur_ns = obs::now_ns() - train_begin_ns;
    span.span_id = obs::next_span_id();
    span.parent_id = msg.trace.parent_span;
    span.round = msg.trace.round;
    trace_.record(span);
    trace_id_ = msg.trace.trace_id;
    trace_epoch_ = static_cast<std::int64_t>(msg.epoch);
    last_trace_id_.store(msg.trace.trace_id, std::memory_order_relaxed);
    last_parent_span_.store(msg.trace.parent_span, std::memory_order_relaxed);
    last_round_.store(msg.trace.round, std::memory_order_relaxed);
  }

  net::ClientUpdateMsg reply;
  reply.trace = msg.trace;
  reply.epoch = msg.epoch;
  reply.client_id = msg.client_id;
  reply.average_loss = outcome.result.average_loss;
  reply.final_loss = outcome.result.final_loss;
  reply.batches = outcome.result.batches;
  reply.sample_count = dataset_.clients[msg.client_id].train.size();
  const std::size_t n = outcome.updated.size();
  if (work.compression.kind == CompressionKind::None) {
    // Dense uplink ships the updated parameters themselves (messages.hpp).
    CompressedUpdate dense;
    dense.dense = std::move(outcome.updated);
    reply.update = make_update_payload(dense, n, work.compression);
  } else {
    reply.update = make_update_payload(compressed, n, work.compression);
  }
  const auto status = transport.send(net::encode_client_update(reply));
  if (status != net::TransportStatus::Ok) {
    HACCS_WARN << "worker " << config_.worker_id << " failed to send update: "
               << net::to_string(status);
  }
}

void WorkerLoop::ship_trace_shard(net::Transport& transport) {
  if (trace_.size() == 0) return;
  net::TraceShardMsg shard;
  shard.worker_id = config_.worker_id;
  shard.trace_id = trace_id_;
  shard.send_ns = obs::now_ns();
  for (const obs::TraceEvent& event : trace_.snapshot()) {
    shard.events.push_back(obs::to_portable(event));
  }
  trace_.clear();
  const auto status = transport.send(net::encode_trace_shard(shard));
  if (status != net::TransportStatus::Ok) {
    HACCS_WARN << "worker " << config_.worker_id
               << " failed to ship trace shard: " << net::to_string(status);
  }
}

WorkerRunEnd WorkerLoop::serve(net::Transport& transport) {
  // Serving-mode heartbeat: a side thread announces liveness on a fixed
  // cadence so the server can tell "training a long job" from "gone".
  // Transport::send is frame-granularity thread-safe (transport.hpp), so
  // heartbeats may interleave with update replies but never tear them.
  std::thread heartbeat;
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  if (config_.heartbeat_interval_ms > 0) {
    heartbeat = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mutex);
      for (;;) {
        hb_cv.wait_for(lock,
                       std::chrono::milliseconds(config_.heartbeat_interval_ms),
                       [&] { return hb_stop; });
        if (hb_stop) return;
        net::HeartbeatMsg beat;
        beat.sender_id = config_.worker_id;
        beat.epoch = last_epoch_.load(std::memory_order_relaxed);
        beat.trace.trace_id = last_trace_id_.load(std::memory_order_relaxed);
        beat.trace.parent_span =
            last_parent_span_.load(std::memory_order_relaxed);
        beat.trace.round = last_round_.load(std::memory_order_relaxed);
        if (transport.send(net::encode_heartbeat(beat)) ==
            net::TransportStatus::Closed) {
          return;  // the main loop will observe the close too
        }
      }
    });
  }
  // RAII join: whatever path leaves serve() — Shutdown, close, idle
  // timeout, or an exception escaping the loop body — the heartbeat thread
  // is signalled and joined (a destroyed joinable std::thread terminates).
  struct HeartbeatJoiner {
    std::thread& thread;
    std::mutex& mutex;
    std::condition_variable& cv;
    bool& stop;
    ~HeartbeatJoiner() {
      if (!thread.joinable()) return;
      {
        std::lock_guard<std::mutex> lock(mutex);
        stop = true;
      }
      cv.notify_all();
      thread.join();
    }
  } joiner{heartbeat, hb_mutex, hb_cv, hb_stop};

  WorkerRunEnd end = WorkerRunEnd::Closed;
  for (;;) {
    net::Frame frame;
    const auto status = transport.recv(&frame, config_.recv_timeout_ms);
    if (status == net::TransportStatus::Closed) {
      end = WorkerRunEnd::Closed;
      break;
    }
    if (status == net::TransportStatus::Timeout) {
      if (config_.exit_on_timeout) {
        end = WorkerRunEnd::IdleTimeout;
        break;
      }
      continue;
    }
    if (status == net::TransportStatus::Corrupt) {
      // A corrupt TrainJob cannot name its client, so there is nothing to
      // answer; the server's recv deadline converts this into a Timeout
      // failure on its side.
      continue;
    }
    switch (frame.type) {
      case net::MessageType::TrainJob:
        try {
          const auto msg = net::decode_train_job(frame);
          // A job for a NEW round means the previous round committed
          // server-side: ship the buffered spans home first (§5i).
          if (msg.trace.valid() && trace_epoch_ >= 0 &&
              static_cast<std::int64_t>(msg.epoch) != trace_epoch_) {
            ship_trace_shard(transport);
          }
          last_epoch_.store(msg.epoch, std::memory_order_relaxed);
          handle_train_job(transport, msg);
          ++served_;
        } catch (const net::WireError& e) {
          HACCS_WARN << "undecodable TrainJob: " << e.what();
        }
        break;
      case net::MessageType::EvalReport:
        // A traced server's wind-down report: last chance to ship the final
        // round's spans while the server is still draining our frames.
        try {
          if (net::decode_eval_report(frame).trace.valid()) {
            ship_trace_shard(transport);
          }
        } catch (const net::WireError& e) {
          HACCS_WARN << "undecodable EvalReport: " << e.what();
        }
        break;
      case net::MessageType::Shutdown:
        ship_trace_shard(transport);
        return WorkerRunEnd::Shutdown;
      default:
        break;  // SelectNotice / Heartbeat: informational
    }
  }
  return end;
}

// ---------------------------------------------------------------------------
// LoopbackCluster

LoopbackCluster::LoopbackCluster(const data::FederatedDataset& dataset,
                                 std::function<nn::Sequential()> model_factory,
                                 std::size_t num_workers,
                                 const net::LoopbackOptions& options)
    : LoopbackCluster(dataset, model_factory, num_workers,
                      LoopbackClusterOptions{.loopback = options}) {}

LoopbackCluster::LoopbackCluster(const data::FederatedDataset& dataset,
                                 std::function<nn::Sequential()> model_factory,
                                 std::size_t num_workers,
                                 const LoopbackClusterOptions& options) {
  if (num_workers == 0) {
    throw std::invalid_argument("LoopbackCluster: need at least one worker");
  }
  server_side_.reserve(num_workers);
  worker_side_.reserve(num_workers);
  loops_.reserve(num_workers);
  threads_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto pair = net::make_loopback_pair(options.loopback);
    // Both directions face the chaos independently, with seeds forked per
    // (worker, direction) so every link replays deterministically.
    net::ChaosOptions server_chaos = options.chaos;
    server_chaos.seed = options.chaos.seed ^ (0x5e2f1d03ULL * (2 * i + 1));
    net::ChaosOptions worker_chaos = options.chaos;
    worker_chaos.seed = options.chaos.seed ^ (0x9b4aa217ULL * (2 * i + 2));
    server_side_.push_back(
        net::wrap_chaos(std::move(pair.a), server_chaos));
    worker_side_.push_back(
        net::wrap_chaos(std::move(pair.b), worker_chaos));
    WorkerLoopConfig cfg;
    cfg.worker_id = static_cast<std::uint32_t>(i);
    cfg.heartbeat_interval_ms = options.worker_heartbeat_interval_ms;
    loops_.push_back(
        std::make_unique<WorkerLoop>(dataset, model_factory, cfg));
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { loops_[i]->serve(*worker_side_[i]); });
  }
}

LoopbackCluster::~LoopbackCluster() { shutdown(); }

std::vector<net::Transport*> LoopbackCluster::server_transports() const {
  std::vector<net::Transport*> out;
  out.reserve(server_side_.size());
  for (const auto& transport : server_side_) out.push_back(transport.get());
  return out;
}

void LoopbackCluster::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& transport : server_side_) {
    transport->send(net::encode_shutdown());
    // Close after the Shutdown frame: loopback recv still delivers queued
    // frames after a close, and if chaos dropped the Shutdown the close is
    // what unblocks the worker — either way the thread exits.
    transport->close();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

}  // namespace haccs::fl
