#include "src/fl/net_driver.hpp"

#include <algorithm>
#include <utility>

#include "src/common/logging.hpp"
#include "src/fl/protocol.hpp"
#include "src/net/wire.hpp"

namespace haccs::fl {

// ---------------------------------------------------------------------------
// TransportDispatcher

TransportDispatcher::TransportDispatcher(std::vector<net::Transport*> workers,
                                         TransportDispatcherConfig config)
    : workers_(std::move(workers)), config_(std::move(config)) {
  if (workers_.empty()) {
    throw std::invalid_argument("TransportDispatcher: no workers");
  }
  outstanding_.resize(workers_.size());
}

void TransportDispatcher::fail_front(std::size_t w, FailureKind kind,
                                     std::vector<TrainOutcome>& outcomes) {
  auto& queue = outstanding_[w];
  if (queue.empty()) return;
  TrainOutcome& out = outcomes[queue.front()];
  out.delivered = false;
  out.failure = kind;
  queue.pop_front();
}

void TransportDispatcher::fail_all(std::size_t w, FailureKind kind,
                                   std::vector<TrainOutcome>& outcomes) {
  while (!outstanding_[w].empty()) fail_front(w, kind, outcomes);
}

bool TransportDispatcher::handle_frame(std::size_t w, const net::Frame& frame,
                                       std::span<const TrainJobSpec> jobs,
                                       const std::vector<float>& global_params,
                                       std::vector<TrainOutcome>& outcomes) {
  if (frame.type != net::MessageType::ClientUpdate) {
    // Heartbeats and other control traffic are not update settlements.
    return false;
  }
  net::ClientUpdateMsg msg;
  try {
    msg = net::decode_client_update(frame);
  } catch (const net::WireError& e) {
    // CRC passed but the payload is still unparseable (e.g. a
    // version-skewed peer): charge it like wire damage.
    HACCS_WARN << "undecodable ClientUpdate from " << workers_[w]->peer()
               << ": " << e.what();
    fail_front(w, FailureKind::CorruptUpdate, outcomes);
    return true;
  }
  // Workers answer strictly FIFO, so this is normally the queue front; the
  // search keeps a reordering (or duplicated) peer from mis-settling jobs.
  auto& queue = outstanding_[w];
  const auto it = std::find_if(
      queue.begin(), queue.end(), [&](std::size_t slot) {
        return jobs[slot].client_id == msg.client_id &&
               jobs[slot].epoch == msg.epoch;
      });
  if (it == queue.end()) return false;  // stale or duplicate — drop
  const std::size_t job_index = *it;
  queue.erase(it);

  TrainOutcome& out = outcomes[jobs[job_index].slot];
  if (msg.update.size != global_params.size()) {
    out.delivered = false;
    out.failure = FailureKind::CorruptUpdate;
    return true;
  }
  // Payload semantics (messages.hpp): Dense carries the updated parameters
  // themselves; compressed kinds carry the delta, reconstructed with the
  // same arithmetic the in-process path uses — bit-identical either way.
  std::vector<float> updated;
  if (msg.update.kind == net::UpdateKind::Dense) {
    updated = std::move(msg.update.dense);
  } else {
    const auto dense = msg.update.to_dense();
    updated.resize(dense.size());
    for (std::size_t p = 0; p < dense.size(); ++p) {
      updated[p] = global_params[p] + dense[p];
    }
  }
  out.delivered = true;
  out.updated = std::move(updated);
  out.result.average_loss = msg.average_loss;
  out.result.final_loss = msg.final_loss;
  out.result.batches = static_cast<std::size_t>(msg.batches);
  return true;
}

void TransportDispatcher::execute(std::span<const TrainJobSpec> jobs,
                                  const std::vector<float>& global_params,
                                  std::vector<TrainOutcome>& outcomes) {
  for (auto& queue : outstanding_) queue.clear();

  // Fan out. After each send, drain whatever already came back so neither
  // side ever sits blocked on a full buffer (a worker may be trying to send
  // its update while we are still sending jobs).
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const TrainJobSpec& job = jobs[j];
    const std::size_t w = job.client_id % workers_.size();
    net::TrainJobMsg msg;
    msg.epoch = job.epoch;
    msg.client_id = static_cast<std::uint32_t>(job.client_id);
    msg.rng_seed = job.rng_seed;
    msg.algorithm = config_.work.fedprox ? 1 : 0;
    msg.fedprox_mu = config_.work.fedprox_mu;
    msg.work_fraction = job.work_fraction;
    msg.local_epochs = config_.work.local.epochs;
    msg.batch_size = config_.work.local.batch_size;
    msg.learning_rate = config_.work.local.sgd.learning_rate;
    msg.momentum = config_.work.local.sgd.momentum;
    msg.weight_decay = config_.work.local.sgd.weight_decay;
    msg.compression_kind =
        static_cast<std::uint8_t>(config_.work.compression.kind);
    msg.topk_fraction = config_.work.compression.topk_fraction;
    msg.error_feedback = config_.work.compression.error_feedback ? 1 : 0;
    msg.params = global_params;

    const auto status =
        workers_[w]->send(net::encode_train_job(msg), config_.send_timeout_ms);
    if (status == net::TransportStatus::Ok) {
      outstanding_[w].push_back(j);
    } else {
      TrainOutcome& out = outcomes[job.slot];
      out.delivered = false;
      out.failure = status == net::TransportStatus::Timeout
                        ? FailureKind::Timeout
                        : FailureKind::Crash;
    }
    for (;;) {
      if (outstanding_[w].empty()) break;
      net::Frame ready;
      const auto rs = workers_[w]->recv(&ready, 0);
      if (rs == net::TransportStatus::Ok) {
        handle_frame(w, ready, jobs, global_params, outcomes);
        continue;
      }
      if (rs == net::TransportStatus::Corrupt) {
        fail_front(w, FailureKind::CorruptUpdate, outcomes);
        continue;
      }
      break;  // Timeout = nothing ready yet; Closed is settled below
    }
  }

  // Collect everything still outstanding, worker by worker.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    while (!outstanding_[w].empty()) {
      net::Frame frame;
      const auto status = workers_[w]->recv(&frame, config_.recv_timeout_ms);
      if (status == net::TransportStatus::Ok) {
        handle_frame(w, frame, jobs, global_params, outcomes);
        continue;
      }
      if (status == net::TransportStatus::Corrupt) {
        fail_front(w, FailureKind::CorruptUpdate, outcomes);
        continue;
      }
      if (status == net::TransportStatus::Timeout) {
        HACCS_WARN << "recv timeout from " << workers_[w]->peer() << "; "
                   << outstanding_[w].size() << " job(s) abandoned";
        fail_all(w, FailureKind::Timeout, outcomes);
      } else {
        HACCS_WARN << "transport to " << workers_[w]->peer() << " closed; "
                   << outstanding_[w].size() << " job(s) abandoned";
        fail_all(w, FailureKind::Crash, outcomes);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// WorkerLoop

WorkerLoop::WorkerLoop(const data::FederatedDataset& dataset,
                       std::function<nn::Sequential()> model_factory,
                       net::Transport& transport, WorkerLoopConfig config)
    : dataset_(dataset),
      model_factory_(std::move(model_factory)),
      transport_(transport),
      config_(config),
      residuals_(dataset.clients.size()) {}

void WorkerLoop::handle_train_job(const net::TrainJobMsg& msg) {
  if (msg.client_id >= dataset_.clients.size()) {
    HACCS_WARN << "TrainJob for unknown client " << msg.client_id
               << " (have " << dataset_.clients.size() << ")";
    return;  // no reply; the server's deadline covers it
  }
  LocalWorkConfig work;
  work.local.epochs = static_cast<std::size_t>(msg.local_epochs);
  work.local.batch_size = static_cast<std::size_t>(msg.batch_size);
  work.local.sgd.learning_rate = msg.learning_rate;
  work.local.sgd.momentum = msg.momentum;
  work.local.sgd.weight_decay = msg.weight_decay;
  work.fedprox = msg.algorithm != 0;
  work.fedprox_mu = msg.fedprox_mu;
  work.compression.kind = static_cast<CompressionKind>(msg.compression_kind);
  work.compression.topk_fraction = msg.topk_fraction;
  work.compression.error_feedback = msg.error_feedback != 0;

  TrainJobSpec job;
  job.client_id = msg.client_id;
  job.epoch = static_cast<std::size_t>(msg.epoch);
  job.rng_seed = msg.rng_seed;
  job.work_fraction = msg.work_fraction;

  nn::Sequential model = model_factory_();
  CompressedUpdate compressed;
  TrainOutcome outcome =
      run_local_job(job, dataset_.clients[msg.client_id].train, model,
                    msg.params, work, residuals_[msg.client_id], &compressed);

  net::ClientUpdateMsg reply;
  reply.epoch = msg.epoch;
  reply.client_id = msg.client_id;
  reply.average_loss = outcome.result.average_loss;
  reply.final_loss = outcome.result.final_loss;
  reply.batches = outcome.result.batches;
  reply.sample_count = dataset_.clients[msg.client_id].train.size();
  const std::size_t n = outcome.updated.size();
  if (work.compression.kind == CompressionKind::None) {
    // Dense uplink ships the updated parameters themselves (messages.hpp).
    CompressedUpdate dense;
    dense.dense = std::move(outcome.updated);
    reply.update = make_update_payload(dense, n, work.compression);
  } else {
    reply.update = make_update_payload(compressed, n, work.compression);
  }
  const auto status = transport_.send(net::encode_client_update(reply));
  if (status != net::TransportStatus::Ok) {
    HACCS_WARN << "worker " << config_.worker_id << " failed to send update: "
               << net::to_string(status);
  }
}

std::size_t WorkerLoop::run() {
  std::size_t served = 0;
  for (;;) {
    net::Frame frame;
    const auto status = transport_.recv(&frame, config_.recv_timeout_ms);
    if (status == net::TransportStatus::Closed) break;
    if (status == net::TransportStatus::Timeout) {
      if (config_.exit_on_timeout) break;
      continue;
    }
    if (status == net::TransportStatus::Corrupt) {
      // A corrupt TrainJob cannot name its client, so there is nothing to
      // answer; the server's recv deadline converts this into a Timeout
      // failure on its side.
      continue;
    }
    switch (frame.type) {
      case net::MessageType::TrainJob:
        try {
          handle_train_job(net::decode_train_job(frame));
          ++served;
        } catch (const net::WireError& e) {
          HACCS_WARN << "undecodable TrainJob: " << e.what();
        }
        break;
      case net::MessageType::Shutdown:
        return served;
      default:
        break;  // SelectNotice / EvalReport / Heartbeat: informational
    }
  }
  return served;
}

// ---------------------------------------------------------------------------
// LoopbackCluster

LoopbackCluster::LoopbackCluster(const data::FederatedDataset& dataset,
                                 std::function<nn::Sequential()> model_factory,
                                 std::size_t num_workers,
                                 const net::LoopbackOptions& options)
    : served_(num_workers, 0) {
  if (num_workers == 0) {
    throw std::invalid_argument("LoopbackCluster: need at least one worker");
  }
  pairs_.reserve(num_workers);
  loops_.reserve(num_workers);
  threads_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    pairs_.push_back(net::make_loopback_pair(options));
    WorkerLoopConfig cfg;
    cfg.worker_id = static_cast<std::uint32_t>(i);
    loops_.push_back(std::make_unique<WorkerLoop>(dataset, model_factory,
                                                  *pairs_[i].b, cfg));
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { served_[i] = loops_[i]->run(); });
  }
}

LoopbackCluster::~LoopbackCluster() { shutdown(); }

std::vector<net::Transport*> LoopbackCluster::server_transports() const {
  std::vector<net::Transport*> out;
  out.reserve(pairs_.size());
  for (const auto& pair : pairs_) out.push_back(pair.a.get());
  return out;
}

void LoopbackCluster::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& pair : pairs_) pair.a->send(net::encode_shutdown());
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

}  // namespace haccs::fl
