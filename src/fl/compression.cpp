#include "src/fl/compression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace haccs::fl {

std::size_t dense_wire_bytes(std::size_t n) { return n * sizeof(float); }

std::size_t compressed_wire_bytes(std::size_t n,
                                  const CompressionConfig& config) {
  switch (config.kind) {
    case CompressionKind::None:
      return dense_wire_bytes(n);
    case CompressionKind::TopK: {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(
                 config.topk_fraction * static_cast<double>(n))));
      // Each kept coordinate ships a 4-byte index and a 4-byte value.
      return k * (sizeof(std::uint32_t) + sizeof(float));
    }
    case CompressionKind::Int8:
      // One byte per coordinate plus the two dequantization scalars.
      return n * sizeof(std::int8_t) + 2 * sizeof(float);
  }
  throw std::invalid_argument("compressed_wire_bytes: bad kind");
}

CompressedUpdate compress_update(std::span<const float> update,
                                 const CompressionConfig& config,
                                 std::vector<float>& residual) {
  const std::size_t n = update.size();
  if (config.kind == CompressionKind::TopK &&
      (config.topk_fraction <= 0.0 || config.topk_fraction > 1.0)) {
    throw std::invalid_argument("compress_update: bad topk_fraction");
  }
  if (config.error_feedback && residual.size() != n) {
    residual.assign(n, 0.0f);
  }

  // The signal the compressor sees: this round's update plus carried error.
  std::vector<float> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] = update[i] +
                (config.error_feedback ? residual[i] : 0.0f);
  }

  CompressedUpdate out;
  out.wire_bytes = compressed_wire_bytes(n, config);

  switch (config.kind) {
    case CompressionKind::None: {
      out.dense = std::move(signal);
      if (config.error_feedback) std::fill(residual.begin(), residual.end(), 0.0f);
      return out;
    }
    case CompressionKind::TopK: {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(
                 config.topk_fraction * static_cast<double>(n))));
      // Threshold = k-th largest magnitude.
      std::vector<float> magnitudes(n);
      for (std::size_t i = 0; i < n; ++i) magnitudes[i] = std::abs(signal[i]);
      std::nth_element(magnitudes.begin(),
                       magnitudes.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       magnitudes.end(), std::greater<float>());
      const float threshold = magnitudes[k - 1];
      out.dense.assign(n, 0.0f);
      out.topk_indices.reserve(k);
      out.topk_values.reserve(k);
      std::size_t kept = 0;
      for (std::size_t i = 0; i < n && kept < k; ++i) {
        if (std::abs(signal[i]) >= threshold) {
          out.dense[i] = signal[i];
          out.topk_indices.push_back(static_cast<std::uint32_t>(i));
          out.topk_values.push_back(signal[i]);
          ++kept;
        }
      }
      if (config.error_feedback) {
        for (std::size_t i = 0; i < n; ++i) {
          residual[i] = signal[i] - out.dense[i];
        }
      }
      return out;
    }
    case CompressionKind::Int8: {
      float lo = 0.0f, hi = 0.0f;
      for (float v : signal) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      out.dense.resize(n);
      out.int8_codes.assign(n, 0);
      const float range = hi - lo;
      if (range <= 0.0f) {
        // lo <= 0 <= hi always, so a zero range means an all-zero signal:
        // all-zero codes with lo = step = 0 reproduce it exactly.
        out.dense = signal;
      } else {
        const float step = range / 255.0f;
        out.int8_lo = lo;
        out.int8_step = step;
        for (std::size_t i = 0; i < n; ++i) {
          const auto q = static_cast<int>(
              std::lround((signal[i] - lo) / step));
          const int code = std::clamp(q, 0, 255);
          out.int8_codes[i] = static_cast<std::uint8_t>(code);
          out.dense[i] = lo + static_cast<float>(code) * step;
        }
      }
      if (config.error_feedback) {
        for (std::size_t i = 0; i < n; ++i) {
          residual[i] = signal[i] - out.dense[i];
        }
      }
      return out;
    }
  }
  throw std::invalid_argument("compress_update: bad kind");
}

}  // namespace haccs::fl
