#include "src/fl/dispatch.hpp"

#include <algorithm>
#include <utility>

#include "src/common/threadpool.hpp"
#include "src/fl/engine.hpp"
#include "src/fl/fedprox.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs::fl {

TrainOutcome run_local_job(const TrainJobSpec& job,
                           const data::Dataset& train_data,
                           nn::Sequential& model,
                           const std::vector<float>& global_params,
                           const LocalWorkConfig& config,
                           std::vector<float>& residual,
                           CompressedUpdate* compressed_out) {
  static obs::Histogram& train_ms =
      obs::Registry::global().histogram("local_train_wall_ms");
  obs::Span client_span("local_train", "fl");
  obs::StopWatch client_clock;
  // The job ships the forked stream as its seed; reconstructing here is
  // bit-identical to receiving the forked Rng itself.
  Rng rng(job.rng_seed);
  TrainOutcome out;
  if (config.fedprox) {
    FedProxConfig prox;
    prox.local = config.local;
    prox.mu = config.fedprox_mu;
    prox.work_fraction = job.work_fraction;
    out.result =
        train_local_fedprox(model, global_params, train_data, prox, rng);
  } else {
    model.set_parameters(global_params);
    out.result = train_local(model, train_data, config.local, rng);
  }
  auto updated = model.get_parameters();
  if (config.compression.kind != CompressionKind::None) {
    // Compress the delta the client uploads; the server reconstructs
    // global + dense(delta). Residual state is per-client, and each client
    // appears at most once per round, so this is race-free.
    std::vector<float> delta(updated.size());
    vec::diff(delta, updated, global_params);
    auto compressed = compress_update(delta, config.compression, residual);
    for (std::size_t p = 0; p < updated.size(); ++p) {
      updated[p] = global_params[p] + compressed.dense[p];
    }
    if (compressed_out) *compressed_out = std::move(compressed);
  }
  out.updated = std::move(updated);
  out.delivered = true;
  train_ms.observe(client_clock.lap_ms());
  return out;
}

bool fold_into_partial(PartialAggregate& agg, std::span<const float> updated,
                       std::span<const float> global_params, double weight,
                       double max_update_norm) {
  std::vector<float> delta(updated.size());
  vec::diff(delta, updated, global_params);
  if (!update_is_valid(delta, max_update_norm)) return false;
  if (agg.sum.empty()) agg.sum.assign(global_params.size(), 0.0);
  vec::accumulate_scaled(agg.sum, updated, weight);
  agg.weight += weight;
  ++agg.updates;
  return true;
}

InProcessDispatcher::InProcessDispatcher(
    const data::FederatedDataset& dataset,
    std::function<nn::Sequential()> model_factory, LocalWorkConfig config)
    : dataset_(dataset),
      model_factory_(std::move(model_factory)),
      config_(std::move(config)),
      residuals_(dataset.clients.size()) {}

void InProcessDispatcher::execute(std::span<const TrainJobSpec> jobs,
                                  const std::vector<float>& global_params,
                                  std::vector<TrainOutcome>& outcomes) {
  // Clients within a round are independent, exactly like the real system.
  parallel_for(0, jobs.size(), [&](std::size_t j) {
    const TrainJobSpec& job = jobs[j];
    nn::Sequential local_model = model_factory_();
    outcomes[job.slot] =
        run_local_job(job, dataset_.clients[job.client_id].train, local_model,
                      global_params, config_, residuals_[job.client_id]);
  });
}

}  // namespace haccs::fl
