// Client-selection strategy interface.
//
// The round engine presents each strategy with the same runtime view — one
// ClientRuntimeInfo per client, carrying the expected round latency (system
// heterogeneity), the last observed training loss (statistical signal), the
// local sample count, and this epoch's availability mask. Strategies return
// the ids of the clients to train this epoch. Concrete strategies (Random,
// TiFL, Oort, HACCS) live in src/select.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"

namespace haccs::fl {

struct ClientRuntimeInfo {
  std::size_t id = 0;
  double latency_s = 0.0;      ///< expected full-round latency (LatencyModel)
  std::size_t num_samples = 0;
  double last_loss = 0.0;      ///< most recent training loss (engine-maintained)
  bool available = true;       ///< this epoch's dropout mask entry
};

/// Why a dispatched client failed to contribute to the round (fault layer,
/// DESIGN.md "Fault model & degraded modes").
enum class FailureKind {
  Crash,          ///< died mid-round; no update arrived
  Timeout,        ///< update arrived after the round deadline
  CorruptUpdate,  ///< update arrived but failed validation (NaN/Inf/norm)
};

class ClientSelector {
 public:
  virtual ~ClientSelector() = default;

  /// Called once before training with the full (all-available) client view.
  virtual void initialize(const std::vector<ClientRuntimeInfo>& clients);

  /// Picks up to `k` distinct available client ids for this epoch. Fewer
  /// may be returned when fewer are available. `rng` is the engine's
  /// selection stream — strategies must draw all randomness from it.
  virtual std::vector<std::size_t> select(
      std::size_t k, const std::vector<ClientRuntimeInfo>& clients,
      std::size_t epoch, Rng& rng) = 0;

  /// Reports a participant's training loss after the round (strategies that
  /// track utility — Oort, TiFL, HACCS — update their state here).
  virtual void report_result(std::size_t client_id, double loss,
                             std::size_t epoch);

  /// Reports a participant's parameter update (local - global) after the
  /// round. Only gradient-direction strategies (paper §IV-A's alternative
  /// summary) consume this; the default discards it.
  virtual void report_update(std::size_t client_id,
                             std::span<const float> update, std::size_t epoch);

  /// Reports that a dispatched client failed to deliver a usable update
  /// (crash, deadline miss, or rejected corruption). Failure-aware
  /// strategies react here — HACCS re-samples the failed device's cluster
  /// and decays its intra-cluster priority, Oort applies a utility penalty,
  /// TiFL refunds the tier credit. Default is a no-op.
  virtual void report_failure(std::size_t client_id, std::size_t epoch,
                              FailureKind kind);

  /// Serializes the strategy's mutable learned state (penalties, observed
  /// losses, credits — NOT the structure rebuilt by initialize()) as an
  /// opaque blob for crash-resume checkpoints. The base implementation
  /// returns empty: a stateless selector resumes correctly for free.
  virtual std::vector<std::uint8_t> save_state() const;

  /// Restores a blob produced by the same selector type's save_state(),
  /// after initialize() has rebuilt the structural state. Throws
  /// std::runtime_error on a blob from a different selector or population.
  virtual void load_state(std::span<const std::uint8_t> state);

  virtual std::string name() const = 0;
};

/// Filters the runtime view down to available client ids.
std::vector<std::size_t> available_ids(
    const std::vector<ClientRuntimeInfo>& clients);

}  // namespace haccs::fl
