#pragma once
/// \file
/// Shared machine-readable run-summary emission for the experiment drivers.
///
/// `haccs_run --summary-json` and `haccs_server --summary-json` must agree on
/// the counter keys they report (tools/check.sh diffs the two), so the common
/// fields are appended by one helper instead of two hand-maintained field
/// lists drifting apart.

#include <string>

#include "src/fl/history.hpp"
#include "src/obs/obs.hpp"

namespace haccs::fl {

/// Appends the history-derived fields every driver reports:
/// final_accuracy, best_accuracy, total_sim_time_s, uplink_bytes,
/// downlink_bytes. check.sh pins final_accuracy/uplink_bytes/downlink_bytes
/// equality between the single- and multi-process drivers — keep the key
/// names stable.
void append_summary_history(obs::JsonObject& o, const TrainingHistory& history);

/// Appends the registry-counter fields every driver reports: serving-mode
/// liveness counters (net_reconnects, heartbeats_missed,
/// rounds_quorum_degraded, checkpoints_written) and the §5h scale pipeline
/// counters (scale_candidate_pairs, scale_exact_distances,
/// scale_incremental_reclusters).
void append_summary_counters(obs::JsonObject& o);

/// Writes `o` plus a trailing newline to `path`; on failure prints to stderr
/// and returns false.
bool write_summary_json(const obs::JsonObject& o, const std::string& path);

}  // namespace haccs::fl
