// In-memory labeled dataset with batch extraction.
//
// Samples are stored contiguously (row-major, one flat feature block per
// sample) so batch assembly for training is a sequence of memcpy-sized
// copies. Labels are int64 class indices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace haccs::data {

class Dataset {
 public:
  /// `sample_shape` excludes the batch dimension, e.g. {1, 28, 28}.
  /// `num_classes` bounds the valid label range [0, num_classes).
  Dataset(std::vector<std::size_t> sample_shape, std::size_t num_classes);

  void add(std::span<const float> features, std::int64_t label);

  /// Moves all samples of `other` into this dataset (shapes must match).
  void append(Dataset&& other);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t num_classes() const { return num_classes_; }
  const std::vector<std::size_t>& sample_shape() const { return sample_shape_; }
  std::size_t sample_size() const { return sample_size_; }

  std::int64_t label(std::size_t i) const { return labels_.at(i); }
  std::span<const std::int64_t> labels() const { return labels_; }
  std::span<const float> features(std::size_t i) const;

  /// Assembles the batch tensor (N, *sample_shape) for the given indices.
  Tensor batch_features(std::span<const std::size_t> indices) const;
  std::vector<std::int64_t> batch_labels(
      std::span<const std::size_t> indices) const;

  /// Raw label counts, length num_classes() — the P(y) summary before
  /// normalization or noise.
  std::vector<double> label_counts() const;

 private:
  std::vector<std::size_t> sample_shape_;
  std::size_t sample_size_;
  std::size_t num_classes_;
  std::vector<float> features_;
  std::vector<std::int64_t> labels_;
};

}  // namespace haccs::data
