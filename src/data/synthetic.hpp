// Synthetic class-conditional image generator.
//
// Substitution for MNIST / FEMNIST / CIFAR-10 (see DESIGN.md §4): each class
// has a fixed smooth prototype image (a sum of seeded low-frequency 2-D
// sinusoids per channel); a sample is the prototype plus Gaussian pixel noise
// and a small random translation. The class structure is therefore learnable
// by the same CNN/MLP architectures the paper trains, while the label and
// feature distributions remain fully controllable — which is what every HACCS
// mechanism actually consumes.
//
// Feature skew (paper §V-D4) is produced by rotating samples about the image
// center; rotations change P(X | y) without touching P(y).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/data/dataset.hpp"

namespace haccs::data {

struct SyntheticImageConfig {
  std::size_t classes = 10;
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  double noise_stddev = 0.35;   ///< per-pixel Gaussian noise
  std::size_t max_shift = 2;    ///< uniform translation in [-max_shift, +max_shift]
  std::size_t waves_per_class = 4;  ///< sinusoid components per prototype
  std::uint64_t prototype_seed = 42;  ///< fixes the class prototypes

  /// MNIST-like: 28x28 grayscale, 10 classes.
  static SyntheticImageConfig mnist_like();
  /// FEMNIST-like: 28x28 grayscale, configurable class count (10, 20, or up
  /// to 62 per the LEAF FEMNIST alphanumeric label space).
  static SyntheticImageConfig femnist_like(std::size_t classes = 10);
  /// CIFAR-like: 32x32 RGB, 10 classes, noisier.
  static SyntheticImageConfig cifar_like();
};

/// Per-client rendering style: an affine pixel transform applied to every
/// sample a client generates, x -> contrast * x + brightness. This stands in
/// for the natural per-device feature heterogeneity of real federated data
/// (each FEMNIST writer's hand, each camera's sensor) — without it the
/// conditional feature distributions P(X|y) would be identical across
/// clients by construction and the P(X|y) summary would have nothing to
/// measure.
struct ClientStyle {
  double brightness = 0.0;
  double contrast = 1.0;

  static ClientStyle neutral() { return {}; }

  /// Draws a style with brightness ~ N(0, brightness_stddev) and contrast
  /// ~ 1 + N(0, contrast_stddev), contrast clamped to stay >= 0.2.
  static ClientStyle sample(double brightness_stddev, double contrast_stddev,
                            Rng& rng);
};

class SyntheticImageGenerator {
 public:
  explicit SyntheticImageGenerator(SyntheticImageConfig config);

  const SyntheticImageConfig& config() const { return config_; }
  std::size_t sample_size() const;
  std::vector<std::size_t> sample_shape() const;

  /// Generates one sample of `label` into `out` (size sample_size()),
  /// optionally rotated by `rotation_degrees` about the image center.
  void generate(std::int64_t label, Rng& rng, std::span<float> out,
                double rotation_degrees = 0.0,
                const ClientStyle& style = ClientStyle::neutral()) const;

  /// Appends `count` samples of `label` to `dataset`.
  void fill(Dataset& dataset, std::int64_t label, std::size_t count, Rng& rng,
            double rotation_degrees = 0.0,
            const ClientStyle& style = ClientStyle::neutral()) const;

  /// The noiseless prototype for a class (exposed for tests).
  std::span<const float> prototype(std::int64_t label) const;

 private:
  SyntheticImageConfig config_;
  std::vector<float> prototypes_;  // classes * channels * h * w
};

/// Rotates a (channels, h, w) image by `degrees` about its center using
/// bilinear interpolation; out-of-bounds source pixels read as 0.
void rotate_image(std::span<const float> input, std::span<float> output,
                  std::size_t channels, std::size_t height, std::size_t width,
                  double degrees);

}  // namespace haccs::data
