// Federated data partitioners — every client-data layout used in the paper.
//
// Each builder draws per-client training and test sets from the synthetic
// generator and records the ground-truth distribution group of each client
// (clients constructed from the same label mixture share a group id), which
// the clustering-accuracy experiments (Fig. 8a) compare against.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/data/dataset.hpp"
#include "src/data/synthetic.hpp"

namespace haccs::data {

/// One client's local data: a train split and a same-distribution test split.
struct ClientData {
  Dataset train;
  Dataset test;
};

struct FederatedDataset {
  std::vector<ClientData> clients;
  std::size_t num_classes = 0;
  /// Ground-truth distribution group per client (same mixture => same id).
  std::vector<int> true_group;
  /// Rotation applied to each client's samples (degrees); nonzero only in
  /// feature-skew partitions.
  std::vector<double> rotation;
  /// The exact label mixture each client was drawn from (sums to 1).
  std::vector<std::vector<double>> true_label_distribution;
  /// Per-client rendering style (neutral unless the partition enables
  /// style jitter).
  std::vector<ClientStyle> style;

  std::size_t num_clients() const { return clients.size(); }
};

struct PartitionConfig {
  std::size_t num_clients = 50;
  /// Per-client training-set size is uniform in [min_samples, max_samples]
  /// ("the amount of data available in each client varies", §V-A).
  std::size_t min_samples = 120;
  std::size_t max_samples = 280;
  /// Test samples per client (fixed so accuracy averages are comparable).
  std::size_t test_samples = 40;
  /// Per-client style jitter (0 disables): stand-in for natural feature
  /// heterogeneity across devices — see data::ClientStyle.
  double style_brightness_stddev = 0.0;
  double style_contrast_stddev = 0.0;
};

/// Paper §V-A main setup: one majority label (75%) plus three noise labels
/// (12% / 7% / 6%). Majority labels rotate round-robin over the class space
/// so every label is some client's majority; noise labels are drawn
/// uniformly from the remaining classes per client.
FederatedDataset partition_majority_label(const SyntheticImageGenerator& gen,
                                          const PartitionConfig& config,
                                          Rng& rng);

/// Paper Table I: 100 devices in 10 groups of 10; each group holds exactly
/// two classes, split 50/50. `config.num_clients` must be a multiple of 10.
FederatedDataset partition_group_table(const SyntheticImageGenerator& gen,
                                       const PartitionConfig& config, Rng& rng);

/// The exact Table I group -> class assignment.
std::array<std::array<int, 2>, 10> group_partition_table();

/// IID: every label present on every client with equal proportion and equal
/// sample counts (paper §V-D1 "no skew" case).
FederatedDataset partition_iid(const SyntheticImageGenerator& gen,
                               const PartitionConfig& config, Rng& rng);

/// K randomly selected labels per client, uniform mixture (paper §V-D1
/// "skewed" case with k = 5).
FederatedDataset partition_k_random_labels(const SyntheticImageGenerator& gen,
                                           const PartitionConfig& config,
                                           std::size_t k, Rng& rng);

/// Feature-skew setup (paper §V-D4): majority-label partition where each
/// client additionally rotates all of its samples by 0° or 45°; the rotation
/// is tied to the majority label so clusters found from P(y) alone hide
/// genuine feature skew.
FederatedDataset partition_feature_skew(const SyntheticImageGenerator& gen,
                                        const PartitionConfig& config,
                                        double rotation_degrees, Rng& rng);

/// Fig. 8a setup: `2 * classes` clients, exactly two per label, each with a
/// 70/10/10/10 mixture (majority label plus three fixed noise labels).
/// `samples_per_client` overrides the PartitionConfig range.
FederatedDataset partition_two_per_label(const SyntheticImageGenerator& gen,
                                         std::size_t samples_per_client,
                                         std::size_t test_samples, Rng& rng);

/// Dirichlet(alpha) label mixtures — a standard FL benchmark layout included
/// as an extension beyond the paper's setups. Small alpha => high skew.
FederatedDataset partition_dirichlet(const SyntheticImageGenerator& gen,
                                     const PartitionConfig& config,
                                     double alpha, Rng& rng);

/// In-place distribution drift (paper §IV-C: "the data distribution at a
/// given client device could change over time"): re-draws a random
/// `fraction` of clients with fresh majority-label mixtures and regenerates
/// their train/test data (same sizes, same rotation/style). Ground-truth
/// metadata (true_group, true_label_distribution) is updated to match.
void apply_label_drift(FederatedDataset& dataset,
                       const SyntheticImageGenerator& gen, double fraction,
                       Rng& rng);

/// Draws `count` labels from `mixture` (a categorical distribution over
/// classes) and fills `dataset` with generated samples, rotated by
/// `rotation_degrees`.
void fill_from_mixture(const SyntheticImageGenerator& gen,
                       const std::vector<double>& mixture, std::size_t count,
                       Dataset& dataset, Rng& rng,
                       double rotation_degrees = 0.0,
                       const ClientStyle& style = ClientStyle::neutral());

}  // namespace haccs::data
