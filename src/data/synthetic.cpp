#include "src/data/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace haccs::data {

SyntheticImageConfig SyntheticImageConfig::mnist_like() {
  return SyntheticImageConfig{};
}

SyntheticImageConfig SyntheticImageConfig::femnist_like(std::size_t classes) {
  if (classes == 0 || classes > 62) {
    throw std::invalid_argument("femnist_like: classes must be in [1, 62]");
  }
  SyntheticImageConfig c;
  c.classes = classes;
  c.prototype_seed = 43;  // distinct prototype family from MNIST-like
  return c;
}

SyntheticImageConfig SyntheticImageConfig::cifar_like() {
  SyntheticImageConfig c;
  c.channels = 3;
  c.height = 32;
  c.width = 32;
  c.noise_stddev = 0.55;  // CIFAR is the harder dataset in the paper
  c.prototype_seed = 44;
  return c;
}

ClientStyle ClientStyle::sample(double brightness_stddev,
                                double contrast_stddev, Rng& rng) {
  ClientStyle style;
  style.brightness = rng.normal(0.0, std::max(brightness_stddev, 0.0));
  style.contrast =
      std::max(0.2, 1.0 + rng.normal(0.0, std::max(contrast_stddev, 0.0)));
  return style;
}

SyntheticImageGenerator::SyntheticImageGenerator(SyntheticImageConfig config)
    : config_(config) {
  if (config_.classes == 0 || config_.channels == 0 || config_.height == 0 ||
      config_.width == 0) {
    throw std::invalid_argument("SyntheticImageGenerator: zero dimension");
  }
  const std::size_t plane = config_.height * config_.width;
  prototypes_.assign(config_.classes * config_.channels * plane, 0.0f);

  Rng rng(config_.prototype_seed);
  const double pi = std::numbers::pi;
  for (std::size_t cls = 0; cls < config_.classes; ++cls) {
    for (std::size_t ch = 0; ch < config_.channels; ++ch) {
      float* proto =
          prototypes_.data() + (cls * config_.channels + ch) * plane;
      for (std::size_t wave = 0; wave < config_.waves_per_class; ++wave) {
        // Low spatial frequencies (1..3 cycles) keep prototypes smooth so
        // small translations leave classes recognizable.
        const double fy = rng.uniform(1.0, 3.0);
        const double fx = rng.uniform(1.0, 3.0);
        const double phase_y = rng.uniform(0.0, 2.0 * pi);
        const double phase_x = rng.uniform(0.0, 2.0 * pi);
        const double amp = rng.uniform(0.4, 1.0);
        for (std::size_t y = 0; y < config_.height; ++y) {
          const double ny = static_cast<double>(y) / config_.height;
          for (std::size_t x = 0; x < config_.width; ++x) {
            const double nx = static_cast<double>(x) / config_.width;
            proto[y * config_.width + x] += static_cast<float>(
                amp * std::sin(2.0 * pi * fy * ny + phase_y) *
                std::cos(2.0 * pi * fx * nx + phase_x));
          }
        }
      }
    }
  }
}

std::size_t SyntheticImageGenerator::sample_size() const {
  return config_.channels * config_.height * config_.width;
}

std::vector<std::size_t> SyntheticImageGenerator::sample_shape() const {
  return {config_.channels, config_.height, config_.width};
}

std::span<const float> SyntheticImageGenerator::prototype(
    std::int64_t label) const {
  if (label < 0 || static_cast<std::size_t>(label) >= config_.classes) {
    throw std::invalid_argument("prototype: label out of range");
  }
  return {prototypes_.data() + static_cast<std::size_t>(label) * sample_size(),
          sample_size()};
}

void SyntheticImageGenerator::generate(std::int64_t label, Rng& rng,
                                       std::span<float> out,
                                       double rotation_degrees,
                                       const ClientStyle& style) const {
  if (out.size() != sample_size()) {
    throw std::invalid_argument("generate: output span size mismatch");
  }
  auto proto = prototype(label);
  const std::size_t h = config_.height, w = config_.width;
  const std::size_t plane = h * w;
  const auto shift_range = static_cast<std::int64_t>(config_.max_shift);
  const std::int64_t dy =
      shift_range > 0 ? rng.uniform_int(-shift_range, shift_range) : 0;
  const std::int64_t dx =
      shift_range > 0 ? rng.uniform_int(-shift_range, shift_range) : 0;

  // Translated prototype with zero padding, then noise.
  for (std::size_t ch = 0; ch < config_.channels; ++ch) {
    const float* src = proto.data() + ch * plane;
    float* dst = out.data() + ch * plane;
    for (std::size_t y = 0; y < h; ++y) {
      const std::int64_t sy = static_cast<std::int64_t>(y) - dy;
      for (std::size_t x = 0; x < w; ++x) {
        const std::int64_t sx = static_cast<std::int64_t>(x) - dx;
        float v = 0.0f;
        if (sy >= 0 && sy < static_cast<std::int64_t>(h) && sx >= 0 &&
            sx < static_cast<std::int64_t>(w)) {
          v = src[static_cast<std::size_t>(sy) * w +
                  static_cast<std::size_t>(sx)];
        }
        dst[y * w + x] =
            v + static_cast<float>(rng.normal(0.0, config_.noise_stddev));
      }
    }
  }

  if (rotation_degrees != 0.0) {
    std::vector<float> rotated(out.size());
    rotate_image(out, rotated, config_.channels, h, w, rotation_degrees);
    std::copy(rotated.begin(), rotated.end(), out.begin());
  }

  if (style.brightness != 0.0 || style.contrast != 1.0) {
    const auto contrast = static_cast<float>(style.contrast);
    const auto brightness = static_cast<float>(style.brightness);
    for (float& v : out) v = contrast * v + brightness;
  }
}

void SyntheticImageGenerator::fill(Dataset& dataset, std::int64_t label,
                                   std::size_t count, Rng& rng,
                                   double rotation_degrees,
                                   const ClientStyle& style) const {
  std::vector<float> buffer(sample_size());
  for (std::size_t i = 0; i < count; ++i) {
    generate(label, rng, buffer, rotation_degrees, style);
    dataset.add(buffer, label);
  }
}

void rotate_image(std::span<const float> input, std::span<float> output,
                  std::size_t channels, std::size_t height, std::size_t width,
                  double degrees) {
  if (input.size() != channels * height * width ||
      output.size() != input.size()) {
    throw std::invalid_argument("rotate_image: size mismatch");
  }
  const double theta = degrees * std::numbers::pi / 180.0;
  const double cos_t = std::cos(theta);
  const double sin_t = std::sin(theta);
  const double cy = (static_cast<double>(height) - 1.0) / 2.0;
  const double cx = (static_cast<double>(width) - 1.0) / 2.0;
  const std::size_t plane = height * width;

  for (std::size_t ch = 0; ch < channels; ++ch) {
    const float* src = input.data() + ch * plane;
    float* dst = output.data() + ch * plane;
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        // Inverse mapping: rotate the destination coordinate back into the
        // source frame and sample bilinearly.
        const double ry = static_cast<double>(y) - cy;
        const double rx = static_cast<double>(x) - cx;
        const double sy = cos_t * ry + sin_t * rx + cy;
        const double sx = -sin_t * ry + cos_t * rx + cx;
        const double fy = std::floor(sy);
        const double fx = std::floor(sx);
        const double wy = sy - fy;
        const double wx = sx - fx;
        auto sample = [&](double yy, double xx) -> double {
          if (yy < 0.0 || xx < 0.0 || yy >= static_cast<double>(height) ||
              xx >= static_cast<double>(width)) {
            return 0.0;
          }
          return src[static_cast<std::size_t>(yy) * width +
                     static_cast<std::size_t>(xx)];
        };
        const double v = (1 - wy) * ((1 - wx) * sample(fy, fx) +
                                     wx * sample(fy, fx + 1)) +
                         wy * ((1 - wx) * sample(fy + 1, fx) +
                               wx * sample(fy + 1, fx + 1));
        dst[y * width + x] = static_cast<float>(v);
      }
    }
  }
}

}  // namespace haccs::data
