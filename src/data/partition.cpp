#include "src/data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "src/common/error.hpp"

namespace haccs::data {

namespace {

Dataset make_empty(const SyntheticImageGenerator& gen) {
  return Dataset(gen.sample_shape(), gen.config().classes);
}

std::size_t draw_sample_count(const PartitionConfig& config, Rng& rng) {
  if (config.min_samples > config.max_samples) {
    throw std::invalid_argument("PartitionConfig: min_samples > max_samples");
  }
  if (config.min_samples == config.max_samples) return config.min_samples;
  return config.min_samples +
         static_cast<std::size_t>(rng.uniform_index(
             config.max_samples - config.min_samples + 1));
}

/// Assigns group ids so that clients with the same mixture signature share
/// an id. Signature = sorted (label, rounded proportion) pairs.
std::vector<int> group_by_mixture(
    const std::vector<std::vector<double>>& mixtures) {
  std::map<std::vector<std::int64_t>, int> seen;
  std::vector<int> groups;
  groups.reserve(mixtures.size());
  for (const auto& mix : mixtures) {
    std::vector<std::int64_t> signature;
    signature.reserve(mix.size());
    for (double p : mix) {
      signature.push_back(static_cast<std::int64_t>(std::llround(p * 1000.0)));
    }
    auto [it, inserted] =
        seen.emplace(std::move(signature), static_cast<int>(seen.size()));
    groups.push_back(it->second);
  }
  return groups;
}

FederatedDataset assemble(const SyntheticImageGenerator& gen,
                          const std::vector<std::vector<double>>& mixtures,
                          const std::vector<std::size_t>& train_counts,
                          std::size_t test_samples,
                          const std::vector<double>& rotations, Rng& rng,
                          const std::vector<ClientStyle>& styles = {}) {
  HACCS_CHECK(mixtures.size() == train_counts.size());
  HACCS_CHECK(mixtures.size() == rotations.size());
  HACCS_CHECK(styles.empty() || styles.size() == mixtures.size());
  FederatedDataset fed;
  fed.num_classes = gen.config().classes;
  fed.true_label_distribution = mixtures;
  fed.rotation = rotations;
  fed.true_group = group_by_mixture(mixtures);
  fed.style = styles.empty()
                  ? std::vector<ClientStyle>(mixtures.size())
                  : styles;
  fed.clients.reserve(mixtures.size());
  for (std::size_t i = 0; i < mixtures.size(); ++i) {
    ClientData client{make_empty(gen), make_empty(gen)};
    fill_from_mixture(gen, mixtures[i], train_counts[i], client.train, rng,
                      rotations[i], fed.style[i]);
    fill_from_mixture(gen, mixtures[i], test_samples, client.test, rng,
                      rotations[i], fed.style[i]);
    fed.clients.push_back(std::move(client));
  }
  return fed;
}

/// Draws one style per client from the PartitionConfig jitter knobs
/// (all-neutral when jitter is disabled).
std::vector<ClientStyle> draw_styles(const PartitionConfig& config,
                                     std::size_t num_clients, Rng& rng) {
  std::vector<ClientStyle> styles(num_clients);
  if (config.style_brightness_stddev > 0.0 ||
      config.style_contrast_stddev > 0.0) {
    for (auto& s : styles) {
      s = ClientStyle::sample(config.style_brightness_stddev,
                              config.style_contrast_stddev, rng);
    }
  }
  return styles;
}

/// Majority label + three noise labels with the paper's 75/12/7/6 split.
std::vector<double> majority_mixture(std::size_t classes, std::size_t majority,
                                     Rng& rng,
                                     const std::array<double, 4>& weights = {
                                         0.75, 0.12, 0.07, 0.06}) {
  if (classes < 4) {
    throw std::invalid_argument("majority_mixture: need at least 4 classes");
  }
  std::vector<double> mix(classes, 0.0);
  mix[majority] = weights[0];
  // Three distinct noise labels drawn from the remaining classes.
  std::vector<std::size_t> others;
  others.reserve(classes - 1);
  for (std::size_t c = 0; c < classes; ++c) {
    if (c != majority) others.push_back(c);
  }
  rng.shuffle(others);
  for (std::size_t j = 0; j < 3; ++j) mix[others[j]] = weights[j + 1];
  return mix;
}

}  // namespace

void fill_from_mixture(const SyntheticImageGenerator& gen,
                       const std::vector<double>& mixture, std::size_t count,
                       Dataset& dataset, Rng& rng, double rotation_degrees,
                       const ClientStyle& style) {
  if (mixture.size() != gen.config().classes) {
    throw std::invalid_argument("fill_from_mixture: mixture arity mismatch");
  }
  std::vector<float> buffer(gen.sample_size());
  for (std::size_t i = 0; i < count; ++i) {
    const auto label = static_cast<std::int64_t>(rng.categorical(mixture));
    gen.generate(label, rng, buffer, rotation_degrees, style);
    dataset.add(buffer, label);
  }
}

FederatedDataset partition_majority_label(const SyntheticImageGenerator& gen,
                                          const PartitionConfig& config,
                                          Rng& rng) {
  const std::size_t classes = gen.config().classes;
  std::vector<std::vector<double>> mixtures;
  std::vector<std::size_t> counts;
  std::vector<double> rotations(config.num_clients, 0.0);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    const std::size_t majority = i % classes;  // round-robin coverage
    mixtures.push_back(majority_mixture(classes, majority, rng));
    counts.push_back(draw_sample_count(config, rng));
  }
  const auto styles = draw_styles(config, config.num_clients, rng);
  return assemble(gen, mixtures, counts, config.test_samples, rotations, rng,
                  styles);
}

std::array<std::array<int, 2>, 10> group_partition_table() {
  // Paper Table I, verbatim.
  return {{{6, 7}, {1, 4}, {5, 9}, {2, 3}, {0, 4},
           {2, 5}, {6, 8}, {0, 9}, {7, 8}, {1, 3}}};
}

FederatedDataset partition_group_table(const SyntheticImageGenerator& gen,
                                       const PartitionConfig& config,
                                       Rng& rng) {
  if (config.num_clients % 10 != 0) {
    throw std::invalid_argument(
        "partition_group_table: num_clients must be a multiple of 10");
  }
  if (gen.config().classes < 10) {
    throw std::invalid_argument(
        "partition_group_table: generator must have >= 10 classes");
  }
  const auto table = group_partition_table();
  const std::size_t per_group = config.num_clients / 10;
  std::vector<std::vector<double>> mixtures;
  std::vector<std::size_t> counts;
  std::vector<double> rotations(config.num_clients, 0.0);
  for (std::size_t g = 0; g < 10; ++g) {
    std::vector<double> mix(gen.config().classes, 0.0);
    mix[static_cast<std::size_t>(table[g][0])] = 0.5;
    mix[static_cast<std::size_t>(table[g][1])] = 0.5;
    for (std::size_t j = 0; j < per_group; ++j) {
      mixtures.push_back(mix);
      counts.push_back(draw_sample_count(config, rng));
    }
  }
  return assemble(gen, mixtures, counts, config.test_samples, rotations, rng);
}

FederatedDataset partition_iid(const SyntheticImageGenerator& gen,
                               const PartitionConfig& config, Rng& rng) {
  const std::size_t classes = gen.config().classes;
  const std::vector<double> uniform(classes, 1.0 / static_cast<double>(classes));
  std::vector<std::vector<double>> mixtures(config.num_clients, uniform);
  // Paper §V-D1: "the same number of training samples exist on each client"
  // in the IID case.
  std::vector<std::size_t> counts(
      config.num_clients, (config.min_samples + config.max_samples) / 2);
  std::vector<double> rotations(config.num_clients, 0.0);
  const auto styles = draw_styles(config, config.num_clients, rng);
  return assemble(gen, mixtures, counts, config.test_samples, rotations, rng,
                  styles);
}

FederatedDataset partition_k_random_labels(const SyntheticImageGenerator& gen,
                                           const PartitionConfig& config,
                                           std::size_t k, Rng& rng) {
  const std::size_t classes = gen.config().classes;
  if (k == 0 || k > classes) {
    throw std::invalid_argument("partition_k_random_labels: bad k");
  }
  std::vector<std::vector<double>> mixtures;
  std::vector<std::size_t> counts;
  std::vector<double> rotations(config.num_clients, 0.0);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    auto chosen = rng.sample_without_replacement(classes, k);
    std::vector<double> mix(classes, 0.0);
    for (std::size_t c : chosen) mix[c] = 1.0 / static_cast<double>(k);
    mixtures.push_back(std::move(mix));
    counts.push_back(draw_sample_count(config, rng));
  }
  const auto styles = draw_styles(config, config.num_clients, rng);
  return assemble(gen, mixtures, counts, config.test_samples, rotations, rng,
                  styles);
}

FederatedDataset partition_feature_skew(const SyntheticImageGenerator& gen,
                                        const PartitionConfig& config,
                                        double rotation_degrees, Rng& rng) {
  const std::size_t classes = gen.config().classes;
  std::vector<std::vector<double>> mixtures;
  std::vector<std::size_t> counts;
  std::vector<double> rotations;
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    const std::size_t majority = i % classes;
    mixtures.push_back(majority_mixture(classes, majority, rng));
    counts.push_back(draw_sample_count(config, rng));
    // Rotation tied to the majority label ("the major labels all have the
    // same rotation angle", §V-D4): even labels upright, odd labels rotated.
    rotations.push_back(majority % 2 == 0 ? 0.0 : rotation_degrees);
  }
  const auto styles = draw_styles(config, config.num_clients, rng);
  auto fed = assemble(gen, mixtures, counts, config.test_samples, rotations,
                      rng, styles);
  // Distinguish groups that share a mixture but differ in rotation.
  int max_group = 0;
  for (int g : fed.true_group) max_group = std::max(max_group, g);
  for (std::size_t i = 0; i < fed.clients.size(); ++i) {
    if (fed.rotation[i] != 0.0) fed.true_group[i] += max_group + 1;
  }
  return fed;
}

FederatedDataset partition_two_per_label(const SyntheticImageGenerator& gen,
                                         std::size_t samples_per_client,
                                         std::size_t test_samples, Rng& rng) {
  const std::size_t classes = gen.config().classes;
  std::vector<std::vector<double>> mixtures;
  std::vector<std::size_t> counts;
  std::vector<double> rotations(2 * classes, 0.0);
  for (std::size_t cls = 0; cls < classes; ++cls) {
    // 70/10/10/10: noise labels are the three cyclic successors, fixed (not
    // random) so both clients of a label share the mixture exactly.
    std::vector<double> mix(classes, 0.0);
    mix[cls] = 0.7;
    mix[(cls + 1) % classes] += 0.1;
    mix[(cls + 2) % classes] += 0.1;
    mix[(cls + 3) % classes] += 0.1;
    for (int copy = 0; copy < 2; ++copy) {
      mixtures.push_back(mix);
      counts.push_back(samples_per_client);
    }
  }
  return assemble(gen, mixtures, counts, test_samples, rotations, rng);
}

FederatedDataset partition_dirichlet(const SyntheticImageGenerator& gen,
                                     const PartitionConfig& config,
                                     double alpha, Rng& rng) {
  if (alpha <= 0.0) {
    throw std::invalid_argument("partition_dirichlet: alpha must be > 0");
  }
  const std::size_t classes = gen.config().classes;
  std::vector<std::vector<double>> mixtures;
  std::vector<std::size_t> counts;
  std::vector<double> rotations(config.num_clients, 0.0);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    // Dirichlet via normalized Gamma(alpha, 1) draws; Gamma sampled with
    // the Marsaglia-Tsang method (alpha boosted by 1 when < 1).
    std::vector<double> mix(classes);
    double total = 0.0;
    for (double& m : mix) {
      double a = alpha;
      double boost = 1.0;
      if (a < 1.0) {
        boost = std::pow(rng.uniform(), 1.0 / a);
        a += 1.0;
      }
      const double d = a - 1.0 / 3.0;
      const double c = 1.0 / std::sqrt(9.0 * d);
      double sample = 0.0;
      for (;;) {
        const double x = rng.normal();
        const double v = std::pow(1.0 + c * x, 3.0);
        if (v <= 0.0) continue;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * std::pow(x, 4.0) ||
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
          sample = d * v * boost;
          break;
        }
      }
      m = std::max(sample, 1e-12);
      total += m;
    }
    for (double& m : mix) m /= total;
    mixtures.push_back(std::move(mix));
    counts.push_back(draw_sample_count(config, rng));
  }
  const auto styles = draw_styles(config, config.num_clients, rng);
  return assemble(gen, mixtures, counts, config.test_samples, rotations, rng,
                  styles);
}

void apply_label_drift(FederatedDataset& dataset,
                       const SyntheticImageGenerator& gen, double fraction,
                       Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("apply_label_drift: fraction out of [0, 1]");
  }
  const std::size_t classes = gen.config().classes;
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(dataset.num_clients()));
  for (std::size_t i :
       rng.sample_without_replacement(dataset.num_clients(), count)) {
    const std::size_t majority = rng.uniform_index(classes);
    auto mixture = majority_mixture(classes, majority, rng);
    const std::size_t train_size = dataset.clients[i].train.size();
    const std::size_t test_size = dataset.clients[i].test.size();
    ClientData fresh{make_empty(gen), make_empty(gen)};
    fill_from_mixture(gen, mixture, train_size, fresh.train, rng,
                      dataset.rotation[i], dataset.style[i]);
    fill_from_mixture(gen, mixture, test_size, fresh.test, rng,
                      dataset.rotation[i], dataset.style[i]);
    dataset.clients[i] = std::move(fresh);
    dataset.true_label_distribution[i] = std::move(mixture);
  }
  // Recompute group ids from the updated mixtures.
  std::map<std::vector<std::int64_t>, int> seen;
  for (std::size_t i = 0; i < dataset.num_clients(); ++i) {
    std::vector<std::int64_t> signature;
    for (double p : dataset.true_label_distribution[i]) {
      signature.push_back(static_cast<std::int64_t>(std::llround(p * 1000.0)));
    }
    auto [it, inserted] =
        seen.emplace(std::move(signature), static_cast<int>(seen.size()));
    dataset.true_group[i] = it->second;
  }
}

}  // namespace haccs::data
