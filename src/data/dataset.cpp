#include "src/data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace haccs::data {

Dataset::Dataset(std::vector<std::size_t> sample_shape, std::size_t num_classes)
    : sample_shape_(std::move(sample_shape)), num_classes_(num_classes) {
  if (sample_shape_.empty()) {
    throw std::invalid_argument("Dataset: empty sample shape");
  }
  if (num_classes_ == 0) {
    throw std::invalid_argument("Dataset: zero classes");
  }
  sample_size_ = 1;
  for (std::size_t e : sample_shape_) {
    if (e == 0) throw std::invalid_argument("Dataset: zero extent");
    sample_size_ *= e;
  }
}

void Dataset::add(std::span<const float> features, std::int64_t label) {
  if (features.size() != sample_size_) {
    throw std::invalid_argument("Dataset::add: feature size mismatch");
  }
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
    throw std::invalid_argument("Dataset::add: label out of range");
  }
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::append(Dataset&& other) {
  if (other.sample_shape_ != sample_shape_ ||
      other.num_classes_ != num_classes_) {
    throw std::invalid_argument("Dataset::append: incompatible dataset");
  }
  features_.insert(features_.end(), other.features_.begin(),
                   other.features_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  other.features_.clear();
  other.labels_.clear();
}

std::span<const float> Dataset::features(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("Dataset::features");
  return {features_.data() + i * sample_size_, sample_size_};
}

Tensor Dataset::batch_features(std::span<const std::size_t> indices) const {
  if (indices.empty()) {
    throw std::invalid_argument("Dataset::batch_features: empty batch");
  }
  std::vector<std::size_t> shape;
  shape.reserve(sample_shape_.size() + 1);
  shape.push_back(indices.size());
  shape.insert(shape.end(), sample_shape_.begin(), sample_shape_.end());
  Tensor batch(std::move(shape));
  float* out = batch.raw();
  for (std::size_t n = 0; n < indices.size(); ++n) {
    auto src = features(indices[n]);
    std::copy(src.begin(), src.end(), out + n * sample_size_);
  }
  return batch;
}

std::vector<std::int64_t> Dataset::batch_labels(
    std::span<const std::size_t> indices) const {
  std::vector<std::int64_t> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(label(i));
  return out;
}

std::vector<double> Dataset::label_counts() const {
  std::vector<double> counts(num_classes_, 0.0);
  for (std::int64_t l : labels_) counts[static_cast<std::size_t>(l)] += 1.0;
  return counts;
}

}  // namespace haccs::data
