// Fig. 5 — Training convergence of the five client-selection strategies.
//
// Paper setup (§V-B): 50 clients, 10 selected per epoch, 10 labels,
// majority-label skew 75/12/7/6, on CIFAR-10 (Fig. 5a) and FEMNIST
// (Fig. 5b). Expectation: both HACCS variants converge faster than TiFL,
// Oort, and Random — ~23% TTA reduction at 50% accuracy on CIFAR-10 and
// 18-74% at 80% accuracy on FEMNIST.
//
// With no --dataset flag both panels (5a cifar, 5b femnist) run.
// Flags: --dataset=cifar|femnist|mnist  --rounds=N  --seed=N  --full
//        --csv=<prefix>
#include <cstdio>

#include "bench/harness.hpp"

namespace {

void run_panel(haccs::bench::ExperimentConfig exp, const std::string& csv) {
  using namespace haccs;
  bench::print_header(
      "Fig. 5 (" + bench::to_string(exp.dataset) + ") — scheduling performance",
      std::to_string(exp.num_clients) + " clients, " +
          std::to_string(exp.clients_per_round) +
          "/round, majority-label skew 75/12/7/6, " +
          std::to_string(exp.rounds) + " rounds",
      "HACCS P(y) and P(X|y) reach target accuracy faster than TiFL, Oort "
      "and Random (paper: 23% faster on CIFAR-10 at 50%, 18-74% on FEMNIST "
      "at 80%)");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);

  const auto engine_config = exp.make_engine_config(fed);
  core::HaccsConfig haccs;
  haccs.rho = 0.5;

  const auto runs = bench::run_all_strategies(fed, engine_config, haccs);

  const bool cifar = exp.dataset == bench::DatasetKind::CifarLike;
  const std::vector<double> targets =
      cifar ? std::vector<double>{0.4, 0.5, 0.6}
            : std::vector<double>{0.5, 0.7, 0.8};
  std::printf("\nTime-to-accuracy:\n");
  bench::print_tta_table(runs, targets, csv.empty() ? "" : csv + "_tta.csv");
  std::printf("\nAccuracy-vs-time curves (Fig. 5 series):\n");
  bench::print_curves(runs, csv.empty() ? "" : csv + "_curves.csv");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  const bool dataset_given = flags.has("dataset");
  bench::ExperimentConfig exp;
  exp.apply_flags(flags);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  if (dataset_given) {
    run_panel(exp, csv);
    return 0;
  }
  // Both paper panels: 5a (CIFAR-10-like) and 5b (FEMNIST-like).
  exp.dataset = bench::DatasetKind::CifarLike;
  run_panel(exp, csv.empty() ? "" : csv + "_cifar");
  exp.dataset = bench::DatasetKind::FemnistLike;
  run_panel(exp, csv.empty() ? "" : csv + "_femnist");
  return 0;
}
