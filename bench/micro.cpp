// Substrate micro-benchmarks (google-benchmark): the kernels every
// experiment leans on — the GEMM family (optimized and reference), both
// convolution directions, full train steps, evaluation throughput, FedAvg
// accumulation, Hellinger distances, summary computation, the Laplace
// mechanism, OPTICS, and device-profile sampling.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "src/clustering/optics.hpp"
#include "src/core/pipeline.hpp"
#include "src/data/partition.hpp"
#include "src/fl/client.hpp"
#include "src/fl/compression.hpp"
#include "src/fl/net_driver.hpp"
#include "src/fl/protocol.hpp"
#include "src/hier/tree_dispatcher.hpp"
#include "src/net/loopback.hpp"
#include "src/net/crc32.hpp"
#include "src/net/frame.hpp"
#include "src/net/messages.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/model.hpp"
#include "src/nn/optimizer.hpp"
#include "src/sim/profile.hpp"
#include "src/stats/privacy.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm_bt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBT)->Arg(64)->Arg(256);

void BM_GemmAT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm_at(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmAT)->Arg(64)->Arg(256);

void BM_GemmReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm_reference(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(64)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const ops::Conv2dShape s{8, 1, 28, 28, 6, 5, 1, 2};
  Rng rng(2);
  Tensor input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor bias({s.out_channels});
  Tensor output({s.batch, s.out_channels, s.out_h(), s.out_w()});
  for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  for (auto& v : weight.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::conv2d_forward(s, input, weight, bias, output);
    benchmark::DoNotOptimize(output.raw());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  const ops::Conv2dShape s{8, 1, 28, 28, 6, 5, 1, 2};
  Rng rng(2);
  Tensor input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor grad_output({s.batch, s.out_channels, s.out_h(), s.out_w()});
  Tensor grad_input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor grad_weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor grad_bias({s.out_channels});
  for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  for (auto& v : weight.data()) v = static_cast<float>(rng.normal());
  for (auto& v : grad_output.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    grad_weight.fill(0.0f);
    grad_bias.fill(0.0f);
    ops::conv2d_backward_params(s, input, grad_output, grad_weight, grad_bias);
    ops::conv2d_backward_input(s, grad_output, weight, grad_input);
    benchmark::DoNotOptimize(grad_input.raw());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_MlpTrainStep(benchmark::State& state) {
  Rng rng(3);
  nn::Sequential model = nn::make_mlp(256, {64}, 10, rng);
  Tensor x({32, 256});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  std::vector<std::int64_t> labels(32);
  for (auto& l : labels) l = static_cast<std::int64_t>(rng.uniform_index(10));
  nn::SgdOptimizer opt({.learning_rate = 0.05});
  for (auto _ : state) {
    model.zero_grad();
    const Tensor logits = model.forward(x);
    auto loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad_logits);
    opt.step(model);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_MlpTrainStep);

void BM_Evaluation(benchmark::State& state) {
  // Test-set evaluation throughput through the const inference path — the
  // per-round evaluate_global cost in the engines.
  data::SyntheticImageConfig gcfg = data::SyntheticImageConfig::femnist_like(10);
  gcfg.height = 16;
  gcfg.width = 16;
  data::SyntheticImageGenerator gen(gcfg);
  data::Dataset set({1, 16, 16}, 10);
  Rng rng(9);
  for (std::int64_t label = 0; label < 10; ++label) {
    gen.fill(set, label, 64, rng);
  }
  nn::Sequential model = nn::make_cnn_mini(1, 16, 16, 10, rng);
  for (auto _ : state) {
    const auto r = fl::evaluate(model, set);
    benchmark::DoNotOptimize(r.accuracy);
  }
  state.SetItemsProcessed(state.iterations() * set.size());
}
BENCHMARK(BM_Evaluation);

void BM_FedAvgAccumulate(benchmark::State& state) {
  // The server-side aggregation loop: weighted accumulation of K client
  // updates into a double buffer plus the final divide.
  const std::size_t params = static_cast<std::size_t>(state.range(0));
  const std::size_t clients = 10;
  Rng rng(10);
  std::vector<std::vector<float>> updates(clients,
                                          std::vector<float>(params));
  for (auto& u : updates) {
    for (auto& v : u) v = static_cast<float>(rng.normal());
  }
  std::vector<double> accumulated(params);
  std::vector<float> global(params);
  for (auto _ : state) {
    std::fill(accumulated.begin(), accumulated.end(), 0.0);
    double total_weight = 0.0;
    for (std::size_t i = 0; i < clients; ++i) {
      const double w = static_cast<double>(60 + i);
      vec::accumulate_scaled(accumulated, updates[i], w);
      total_weight += w;
    }
    for (std::size_t p = 0; p < params; ++p) {
      global[p] = static_cast<float>(accumulated[p] / total_weight);
    }
    benchmark::DoNotOptimize(global.data());
  }
  state.SetItemsProcessed(state.iterations() * clients * params);
}
BENCHMARK(BM_FedAvgAccumulate)->Arg(16384)->Arg(262144);

void BM_Hellinger(benchmark::State& state) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> p(bins), q(bins);
  for (auto& v : p) v = rng.uniform();
  for (auto& v : q) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::hellinger_distance(p, q));
  }
}
BENCHMARK(BM_Hellinger)->Arg(10)->Arg(62)->Arg(1024);

void BM_LaplaceMechanism(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    stats::Histogram h(62);
    for (std::size_t i = 0; i < 62; ++i) h.add_count(i, 100.0);
    stats::privatize_histogram(h, 0.1, rng);
    benchmark::DoNotOptimize(h.counts().data());
  }
}
BENCHMARK(BM_LaplaceMechanism);

void BM_SummaryPipeline(benchmark::State& state) {
  // Full client-summary -> distance-matrix -> clustering pipeline at the
  // paper's scale (50 clients).
  data::SyntheticImageConfig gcfg;
  gcfg.height = 16;
  gcfg.width = 16;
  data::SyntheticImageGenerator gen(gcfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 50;
  pcfg.min_samples = 100;
  pcfg.max_samples = 100;
  pcfg.test_samples = 1;
  Rng rng(6);
  const auto fed = data::partition_majority_label(gen, pcfg, rng);
  core::HaccsConfig cfg;
  for (auto _ : state) {
    auto labels = core::cluster_clients(fed, cfg);
    benchmark::DoNotOptimize(labels.data());
  }
}
BENCHMARK(BM_SummaryPipeline);

void BM_Optics(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(0.0, 10.0);
  const auto m = clustering::DistanceMatrix::build(
      n, [&](std::size_t i, std::size_t j) { return std::abs(xs[i] - xs[j]); });
  for (auto _ : state) {
    auto result = clustering::optics(m, {.min_pts = 2});
    benchmark::DoNotOptimize(result.ordering.data());
  }
}
BENCHMARK(BM_Optics)->Arg(50)->Arg(200)->Arg(500);

void BM_DeviceProfileSample(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::DeviceProfile::sample(rng));
  }
}
BENCHMARK(BM_DeviceProfileSample);

// ---------------------------------------------------------------------------
// Wire protocol (src/net): framing cost per update, both directions. The
// arg is the parameter count n; kind 0/1/2 = None/TopK/Int8, matching
// fl::CompressionKind. Items processed = parameters, so the reported rate
// is params/s through the codec.

fl::CompressionConfig net_bench_config(int kind) {
  fl::CompressionConfig config;
  config.kind = static_cast<fl::CompressionKind>(kind);
  config.topk_fraction = 0.1;
  return config;
}

net::ClientUpdateMsg net_bench_update(std::size_t n,
                                      const fl::CompressionConfig& config) {
  Rng rng(11);
  std::vector<float> update(n);
  for (auto& v : update) v = static_cast<float>(rng.normal());
  std::vector<float> residual;
  const auto compressed = fl::compress_update(update, config, residual);
  net::ClientUpdateMsg msg;
  msg.client_id = 1;
  msg.sample_count = 80;
  msg.update = fl::make_update_payload(compressed, n, config);
  return msg;
}

void BM_Crc32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Crc32)->Arg(1024)->Arg(262144)->Arg(4194304);

void BM_EncodeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto config = net_bench_config(static_cast<int>(state.range(1)));
  const auto msg = net_bench_update(n, config);
  for (auto _ : state) {
    auto bytes = net::encode_frame(net::encode_client_update(msg));
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EncodeUpdate)
    ->Args({262144, 0})
    ->Args({262144, 1})
    ->Args({262144, 2});

void BM_DecodeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto config = net_bench_config(static_cast<int>(state.range(1)));
  const auto bytes =
      net::encode_frame(net::encode_client_update(net_bench_update(n, config)));
  for (auto _ : state) {
    net::Frame frame;
    if (net::decode_frame(bytes, &frame) != net::FrameStatus::Ok) {
      state.SkipWithError("frame decode failed");
      break;
    }
    auto msg = net::decode_client_update(frame);
    benchmark::DoNotOptimize(msg.update.dense.data());
    benchmark::DoNotOptimize(msg.update.values.data());
    benchmark::DoNotOptimize(msg.update.codes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecodeUpdate)
    ->Args({262144, 0})
    ->Args({262144, 1})
    ->Args({262144, 2});

// ---------------------------------------------------------------------------
// Flat vs tree round dispatch (DESIGN.md §5j): one full round's fan-out +
// collection over loopback transports against emulated peers (no training —
// the benchmark isolates the wire + fold path). The flat arm moves one dense
// ClientUpdate per worker to the server; the tree arm moves one chunked f64
// partial sum per aggregator, which is the uplink-compression story the
// hierarchy exists for. Bytes/s counters report the modeled root uplink.

constexpr std::size_t kRoundParams = 16384;
constexpr std::size_t kRoundWorkers = 8;

/// Emulated flat worker: echoes every TrainJob's params as a Dense update.
void bench_flat_worker(net::Transport& transport) {
  for (;;) {
    net::Frame frame;
    const auto status = transport.recv(&frame, 200);
    if (status == net::TransportStatus::Closed) return;
    if (status != net::TransportStatus::Ok) continue;
    if (frame.type == net::MessageType::Shutdown) return;
    if (frame.type != net::MessageType::TrainJob) continue;
    const auto msg = net::decode_train_job(frame);
    net::ClientUpdateMsg reply;
    reply.epoch = msg.epoch;
    reply.client_id = msg.client_id;
    reply.batches = 1;
    reply.sample_count = 10;
    reply.update.kind = net::UpdateKind::Dense;
    reply.update.size = msg.params.size();
    reply.update.dense = msg.params;
    if (transport.send(net::encode_client_update(reply), 5000) !=
        net::TransportStatus::Ok) {
      return;
    }
  }
}

/// Emulated mid-tier aggregator: answers each SelectNotice round with a
/// chunked weighted partial sum plus the SubtreeUpdate trailer.
void bench_tree_agg(net::Transport& transport, std::uint32_t agg_id,
                    std::size_t chunk_params) {
  for (;;) {
    net::Frame frame;
    const auto status = transport.recv(&frame, 200);
    if (status == net::TransportStatus::Closed) return;
    if (status != net::TransportStatus::Ok) continue;
    if (frame.type == net::MessageType::Shutdown) return;
    if (frame.type != net::MessageType::SelectNotice) continue;
    const auto notice = net::decode_select_notice(frame);
    std::vector<float> params;
    for (std::size_t i = 0; i < notice.clients.size(); ++i) {
      if (transport.recv(&frame, 5000) != net::TransportStatus::Ok) return;
      params = net::decode_train_job(frame).params;
    }
    const double weight = 10.0 * notice.clients.size();
    std::uint64_t chunks = 0;
    for (std::size_t offset = 0; offset < params.size();
         offset += chunk_params) {
      net::SubtreeChunkMsg chunk;
      chunk.epoch = notice.epoch;
      chunk.agg_id = agg_id;
      chunk.offset = offset;
      const std::size_t end = std::min(offset + chunk_params, params.size());
      chunk.data.reserve(end - offset);
      for (std::size_t k = offset; k < end; ++k) {
        chunk.data.push_back(weight * static_cast<double>(params[k]));
      }
      if (transport.send(net::encode_subtree_chunk(chunk), 5000) !=
          net::TransportStatus::Ok) {
        return;
      }
      ++chunks;
    }
    net::SubtreeUpdateMsg update;
    update.epoch = notice.epoch;
    update.agg_id = agg_id;
    update.weight = weight;
    update.n_chunks = chunks;
    for (const std::uint32_t c : notice.clients) {
      net::SubtreeClientStat stat;
      stat.client_id = c;
      stat.delivered = 1;
      stat.sample_count = 10;
      stat.batches = 1;
      update.stats.push_back(stat);
    }
    if (transport.send(net::encode_subtree_update(update), 5000) !=
        net::TransportStatus::Ok) {
      return;
    }
  }
}

std::vector<fl::TrainJobSpec> bench_round_jobs() {
  std::vector<fl::TrainJobSpec> jobs(kRoundWorkers);
  for (std::size_t w = 0; w < kRoundWorkers; ++w) {
    jobs[w].slot = w;
    jobs[w].client_id = w;
  }
  return jobs;
}

void BM_FlatRoundDispatch(benchmark::State& state) {
  std::vector<net::LoopbackPair> pairs;
  std::vector<net::Transport*> server_side;
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kRoundWorkers; ++w) {
    pairs.push_back(net::make_loopback_pair());
    server_side.push_back(pairs.back().a.get());
  }
  for (std::size_t w = 0; w < kRoundWorkers; ++w) {
    workers.emplace_back([&, w] { bench_flat_worker(*pairs[w].b); });
  }

  fl::TransportDispatcherConfig config;
  config.recv_timeout_ms = 30000;
  fl::TransportDispatcher dispatcher(server_side, config);
  const auto jobs = bench_round_jobs();
  const std::vector<float> params(kRoundParams, 1.0f);
  for (auto _ : state) {
    std::vector<fl::TrainOutcome> outcomes(jobs.size());
    dispatcher.execute(jobs, params, outcomes);
    benchmark::DoNotOptimize(outcomes.data());
  }
  for (auto& pair : pairs) pair.a->send(net::encode_shutdown(), 1000);
  for (auto& thread : workers) thread.join();
  // Root uplink: one dense f32 update per worker per round.
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRoundWorkers *
                                                    kRoundParams *
                                                    sizeof(float)));
}
BENCHMARK(BM_FlatRoundDispatch)->Unit(benchmark::kMillisecond);

void BM_TreeRoundDispatch(benchmark::State& state) {
  const auto num_aggs = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChunk = 4096;
  std::vector<net::LoopbackPair> pairs;
  std::vector<net::Transport*> root_side;
  std::vector<std::thread> aggs;
  for (std::size_t a = 0; a < num_aggs; ++a) {
    pairs.push_back(net::make_loopback_pair());
    root_side.push_back(pairs.back().a.get());
  }
  for (std::size_t a = 0; a < num_aggs; ++a) {
    aggs.emplace_back([&, a] {
      bench_tree_agg(*pairs[a].b, static_cast<std::uint32_t>(a), kChunk);
    });
  }

  hier::TreeDispatcherConfig config;
  config.num_workers = kRoundWorkers;
  config.recv_timeout_ms = 30000;
  hier::TreeDispatcher dispatcher(root_side, config);
  const auto jobs = bench_round_jobs();
  const std::vector<float> params(kRoundParams, 1.0f);
  for (auto _ : state) {
    std::vector<fl::TrainOutcome> outcomes(jobs.size());
    dispatcher.execute(jobs, params, outcomes);
    benchmark::DoNotOptimize(outcomes.data());
  }
  for (auto& pair : pairs) pair.a->send(net::encode_shutdown(), 1000);
  for (auto& thread : aggs) thread.join();
  // Root uplink: one chunked f64 partial sum per aggregator per round,
  // independent of the worker count — the fan-in win.
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(num_aggs * kRoundParams *
                                                    sizeof(double)));
  state.counters["aggs"] = static_cast<double>(num_aggs);
}
BENCHMARK(BM_TreeRoundDispatch)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace haccs

BENCHMARK_MAIN();
