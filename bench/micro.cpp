// Substrate micro-benchmarks (google-benchmark): the kernels every
// experiment leans on — the GEMM family (optimized and reference), both
// convolution directions, full train steps, evaluation throughput, FedAvg
// accumulation, Hellinger distances, summary computation, the Laplace
// mechanism, OPTICS, and device-profile sampling.
#include <benchmark/benchmark.h>

#include "src/clustering/optics.hpp"
#include "src/core/pipeline.hpp"
#include "src/data/partition.hpp"
#include "src/fl/client.hpp"
#include "src/fl/compression.hpp"
#include "src/fl/protocol.hpp"
#include "src/net/crc32.hpp"
#include "src/net/frame.hpp"
#include "src/net/messages.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/model.hpp"
#include "src/nn/optimizer.hpp"
#include "src/sim/profile.hpp"
#include "src/stats/privacy.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/vecops.hpp"

namespace haccs {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm_bt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBT)->Arg(64)->Arg(256);

void BM_GemmAT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm_at(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmAT)->Arg(64)->Arg(256);

void BM_GemmReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::gemm_reference(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(64)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const ops::Conv2dShape s{8, 1, 28, 28, 6, 5, 1, 2};
  Rng rng(2);
  Tensor input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor bias({s.out_channels});
  Tensor output({s.batch, s.out_channels, s.out_h(), s.out_w()});
  for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  for (auto& v : weight.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ops::conv2d_forward(s, input, weight, bias, output);
    benchmark::DoNotOptimize(output.raw());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  const ops::Conv2dShape s{8, 1, 28, 28, 6, 5, 1, 2};
  Rng rng(2);
  Tensor input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor grad_output({s.batch, s.out_channels, s.out_h(), s.out_w()});
  Tensor grad_input({s.batch, s.in_channels, s.in_h, s.in_w});
  Tensor grad_weight({s.out_channels, s.in_channels, s.kernel, s.kernel});
  Tensor grad_bias({s.out_channels});
  for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  for (auto& v : weight.data()) v = static_cast<float>(rng.normal());
  for (auto& v : grad_output.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    grad_weight.fill(0.0f);
    grad_bias.fill(0.0f);
    ops::conv2d_backward_params(s, input, grad_output, grad_weight, grad_bias);
    ops::conv2d_backward_input(s, grad_output, weight, grad_input);
    benchmark::DoNotOptimize(grad_input.raw());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_MlpTrainStep(benchmark::State& state) {
  Rng rng(3);
  nn::Sequential model = nn::make_mlp(256, {64}, 10, rng);
  Tensor x({32, 256});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  std::vector<std::int64_t> labels(32);
  for (auto& l : labels) l = static_cast<std::int64_t>(rng.uniform_index(10));
  nn::SgdOptimizer opt({.learning_rate = 0.05});
  for (auto _ : state) {
    model.zero_grad();
    const Tensor logits = model.forward(x);
    auto loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad_logits);
    opt.step(model);
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_MlpTrainStep);

void BM_Evaluation(benchmark::State& state) {
  // Test-set evaluation throughput through the const inference path — the
  // per-round evaluate_global cost in the engines.
  data::SyntheticImageConfig gcfg = data::SyntheticImageConfig::femnist_like(10);
  gcfg.height = 16;
  gcfg.width = 16;
  data::SyntheticImageGenerator gen(gcfg);
  data::Dataset set({1, 16, 16}, 10);
  Rng rng(9);
  for (std::int64_t label = 0; label < 10; ++label) {
    gen.fill(set, label, 64, rng);
  }
  nn::Sequential model = nn::make_cnn_mini(1, 16, 16, 10, rng);
  for (auto _ : state) {
    const auto r = fl::evaluate(model, set);
    benchmark::DoNotOptimize(r.accuracy);
  }
  state.SetItemsProcessed(state.iterations() * set.size());
}
BENCHMARK(BM_Evaluation);

void BM_FedAvgAccumulate(benchmark::State& state) {
  // The server-side aggregation loop: weighted accumulation of K client
  // updates into a double buffer plus the final divide.
  const std::size_t params = static_cast<std::size_t>(state.range(0));
  const std::size_t clients = 10;
  Rng rng(10);
  std::vector<std::vector<float>> updates(clients,
                                          std::vector<float>(params));
  for (auto& u : updates) {
    for (auto& v : u) v = static_cast<float>(rng.normal());
  }
  std::vector<double> accumulated(params);
  std::vector<float> global(params);
  for (auto _ : state) {
    std::fill(accumulated.begin(), accumulated.end(), 0.0);
    double total_weight = 0.0;
    for (std::size_t i = 0; i < clients; ++i) {
      const double w = static_cast<double>(60 + i);
      vec::accumulate_scaled(accumulated, updates[i], w);
      total_weight += w;
    }
    for (std::size_t p = 0; p < params; ++p) {
      global[p] = static_cast<float>(accumulated[p] / total_weight);
    }
    benchmark::DoNotOptimize(global.data());
  }
  state.SetItemsProcessed(state.iterations() * clients * params);
}
BENCHMARK(BM_FedAvgAccumulate)->Arg(16384)->Arg(262144);

void BM_Hellinger(benchmark::State& state) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> p(bins), q(bins);
  for (auto& v : p) v = rng.uniform();
  for (auto& v : q) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::hellinger_distance(p, q));
  }
}
BENCHMARK(BM_Hellinger)->Arg(10)->Arg(62)->Arg(1024);

void BM_LaplaceMechanism(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    stats::Histogram h(62);
    for (std::size_t i = 0; i < 62; ++i) h.add_count(i, 100.0);
    stats::privatize_histogram(h, 0.1, rng);
    benchmark::DoNotOptimize(h.counts().data());
  }
}
BENCHMARK(BM_LaplaceMechanism);

void BM_SummaryPipeline(benchmark::State& state) {
  // Full client-summary -> distance-matrix -> clustering pipeline at the
  // paper's scale (50 clients).
  data::SyntheticImageConfig gcfg;
  gcfg.height = 16;
  gcfg.width = 16;
  data::SyntheticImageGenerator gen(gcfg);
  data::PartitionConfig pcfg;
  pcfg.num_clients = 50;
  pcfg.min_samples = 100;
  pcfg.max_samples = 100;
  pcfg.test_samples = 1;
  Rng rng(6);
  const auto fed = data::partition_majority_label(gen, pcfg, rng);
  core::HaccsConfig cfg;
  for (auto _ : state) {
    auto labels = core::cluster_clients(fed, cfg);
    benchmark::DoNotOptimize(labels.data());
  }
}
BENCHMARK(BM_SummaryPipeline);

void BM_Optics(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(0.0, 10.0);
  const auto m = clustering::DistanceMatrix::build(
      n, [&](std::size_t i, std::size_t j) { return std::abs(xs[i] - xs[j]); });
  for (auto _ : state) {
    auto result = clustering::optics(m, {.min_pts = 2});
    benchmark::DoNotOptimize(result.ordering.data());
  }
}
BENCHMARK(BM_Optics)->Arg(50)->Arg(200)->Arg(500);

void BM_DeviceProfileSample(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::DeviceProfile::sample(rng));
  }
}
BENCHMARK(BM_DeviceProfileSample);

// ---------------------------------------------------------------------------
// Wire protocol (src/net): framing cost per update, both directions. The
// arg is the parameter count n; kind 0/1/2 = None/TopK/Int8, matching
// fl::CompressionKind. Items processed = parameters, so the reported rate
// is params/s through the codec.

fl::CompressionConfig net_bench_config(int kind) {
  fl::CompressionConfig config;
  config.kind = static_cast<fl::CompressionKind>(kind);
  config.topk_fraction = 0.1;
  return config;
}

net::ClientUpdateMsg net_bench_update(std::size_t n,
                                      const fl::CompressionConfig& config) {
  Rng rng(11);
  std::vector<float> update(n);
  for (auto& v : update) v = static_cast<float>(rng.normal());
  std::vector<float> residual;
  const auto compressed = fl::compress_update(update, config, residual);
  net::ClientUpdateMsg msg;
  msg.client_id = 1;
  msg.sample_count = 80;
  msg.update = fl::make_update_payload(compressed, n, config);
  return msg;
}

void BM_Crc32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Crc32)->Arg(1024)->Arg(262144)->Arg(4194304);

void BM_EncodeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto config = net_bench_config(static_cast<int>(state.range(1)));
  const auto msg = net_bench_update(n, config);
  for (auto _ : state) {
    auto bytes = net::encode_frame(net::encode_client_update(msg));
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EncodeUpdate)
    ->Args({262144, 0})
    ->Args({262144, 1})
    ->Args({262144, 2});

void BM_DecodeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto config = net_bench_config(static_cast<int>(state.range(1)));
  const auto bytes =
      net::encode_frame(net::encode_client_update(net_bench_update(n, config)));
  for (auto _ : state) {
    net::Frame frame;
    if (net::decode_frame(bytes, &frame) != net::FrameStatus::Ok) {
      state.SkipWithError("frame decode failed");
      break;
    }
    auto msg = net::decode_client_update(frame);
    benchmark::DoNotOptimize(msg.update.dense.data());
    benchmark::DoNotOptimize(msg.update.values.data());
    benchmark::DoNotOptimize(msg.update.codes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecodeUpdate)
    ->Args({262144, 0})
    ->Args({262144, 1})
    ->Args({262144, 2});

}  // namespace
}  // namespace haccs

BENCHMARK_MAIN();
