// Fig. 1 — The motivating dropout experiment (paper §III).
//
// 100 clients partitioned by Table I (10 groups x 2 classes), 20 selected
// per epoch, random selection. Two policies, 80/100 devices dropped from the
// start: (a) randomly chosen devices, (b) eight whole groups. The paper's
// finding: per-group accuracy survives random dropout (every distribution
// keeps a representative) but collapses for fully-dropped groups — unless
// the group's classes also appear in a surviving group.
//
// Flags: --rounds=N --seed=N --full --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::MnistLike;
  exp.num_clients = 100;
  exp.clients_per_round = 20;
  exp.rounds = 100;
  exp.apply_flags(flags);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Fig. 1 — dropout with Table I group partition",
      "100 clients in 10 groups of 2 classes (Table I), 20/round, random "
      "selection, 80 devices dropped permanently",
      "1a: random dropout leaves every group's accuracy intact; 1b: fully "
      "dropped groups collapse, except where their classes survive in a "
      "participating group");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  data::PartitionConfig pcfg = exp.make_partition_config();
  pcfg.num_clients = exp.num_clients;
  const auto fed = data::partition_group_table(gen, pcfg, rng);

  auto engine_config = exp.make_engine_config(fed);

  // The groups dropped in policy (b): groups 0-7 (80 devices). Their classes
  // are {6,7},{1,4},{5,9},{2,3},{0,4},{2,5},{6,8},{0,9}; survivors are
  // groups 8 {7,8} and 9 {1,3} — so classes 7, 8, 1, 3 stay represented.
  const std::vector<int> dropped_groups = {0, 1, 2, 3, 4, 5, 6, 7};

  auto run_policy = [&](const sim::DropoutSchedule& schedule) {
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 engine_config);
    select::RandomSelector selector;
    trainer.run(selector, schedule);
    return trainer.final_per_client_accuracy();
  };

  std::fprintf(stderr, "  policy (a): random permanent dropout...\n");
  const auto random_schedule = sim::make_permanent_random_dropout(
      exp.num_clients, 80, 0, exp.seed + 17);
  const auto acc_random = run_policy(*random_schedule);

  std::fprintf(stderr, "  policy (b): whole-group dropout...\n");
  const auto group_schedule =
      sim::make_group_dropout(fed.true_group, dropped_groups, 0);
  const auto acc_group = run_policy(*group_schedule);

  // Aggregate per group.
  auto per_group = [&](const std::vector<double>& acc) {
    std::vector<double> group_acc(10, 0.0);
    std::vector<std::size_t> group_n(10, 0);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      group_acc[static_cast<std::size_t>(fed.true_group[i])] += acc[i];
      ++group_n[static_cast<std::size_t>(fed.true_group[i])];
    }
    for (std::size_t g = 0; g < 10; ++g) {
      group_acc[g] /= static_cast<double>(group_n[g]);
    }
    return group_acc;
  };
  const auto ga_random = per_group(acc_random);
  const auto ga_group = per_group(acc_group);

  const auto table_classes = data::group_partition_table();
  Table table({"group", "classes", "acc_random_dropout (1a)",
               "acc_group_dropout (1b)", "dropped_in_1b",
               "classes_survive_in_1b"});
  for (std::size_t g = 0; g < 10; ++g) {
    const bool dropped = g < 8;
    // A class survives policy (b) if it appears in group 8 or 9.
    auto survives = [&](int cls) {
      for (std::size_t s : {8u, 9u}) {
        if (table_classes[s][0] == cls || table_classes[s][1] == cls) {
          return true;
        }
      }
      return false;
    };
    const bool any_survive = survives(table_classes[g][0]) ||
                             survives(table_classes[g][1]);
    table.add_row({std::to_string(g),
                   std::to_string(table_classes[g][0]) + "," +
                       std::to_string(table_classes[g][1]),
                   Table::num(ga_random[g], 3), Table::num(ga_group[g], 3),
                   dropped ? "yes" : "no", any_survive ? "partly" : "no"});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);

  // Summary rows mirroring the paper's reading of the figure.
  double random_min = 1.0, surviving = 0.0, collapsed = 0.0;
  int n_surv = 0, n_coll = 0;
  for (std::size_t g = 0; g < 10; ++g) {
    random_min = std::min(random_min, ga_random[g]);
    if (g < 8) {
      ++n_coll;
      collapsed += ga_group[g];
    } else {
      ++n_surv;
      surviving += ga_group[g];
    }
  }
  std::printf("\nsummary: min group accuracy under random dropout = %.3f\n",
              random_min);
  std::printf("         mean accuracy of surviving groups (1b)   = %.3f\n",
              surviving / n_surv);
  std::printf("         mean accuracy of dropped groups (1b)     = %.3f\n",
              collapsed / n_coll);
  return 0;
}
