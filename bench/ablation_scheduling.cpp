// Ablation — scheduling design choices (DESIGN.md §5).
//
// One binary, three axes on the Fig. 5 FEMNIST-like workload:
//   * in-cluster pick: min-latency (Algorithm 1) vs latency-weighted random
//     (the §V-E bias mitigation) — TTA and device-inclusion breadth;
//   * clustering algorithm / extraction: OPTICS-auto (default) vs OPTICS-ξ
//     vs plain DBSCAN;
//   * local algorithm: FedAvg vs FedProx (mu > 0, latency-scaled work).
//
// Flags: --rounds=N --seed=N --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/core/stratified_selector.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::FemnistLike;
  exp.rounds = 180;
  exp.apply_flags(flags);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Ablation — scheduling design choices (HACCS P(y), femnist-like)",
      "in-cluster policy, clustering extraction, FedAvg vs FedProx",
      "min-latency converges fastest but includes fewer devices; weighted "
      "random trades a little TTA for broader inclusion; extraction variants "
      "agree on well-separated clusters; FedProx trades per-round time for "
      "straggler tolerance");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);
  const auto base_engine = exp.make_engine_config(fed);

  struct Variant {
    std::string name;
    core::HaccsConfig haccs;
    fl::EngineConfig engine;
  };
  std::vector<Variant> variants;

  {
    Variant v{"baseline (min-latency, optics-auto, FedAvg)", {}, base_engine};
    v.haccs.rho = 0.5;
    variants.push_back(v);
  }
  {
    Variant v{"in-cluster: weighted-random", {}, base_engine};
    v.haccs.rho = 0.5;
    v.haccs.in_cluster = core::InClusterPolicy::WeightedRandom;
    variants.push_back(v);
  }
  {
    Variant v{"extraction: xi(0.05)", {}, base_engine};
    v.haccs.rho = 0.5;
    v.haccs.extraction = core::Extraction::Xi;
    variants.push_back(v);
  }
  {
    Variant v{"algorithm: dbscan(eps=0.45)", {}, base_engine};
    v.haccs.rho = 0.5;
    v.haccs.algorithm = core::ClusterAlgorithm::Dbscan;
    v.haccs.dbscan.eps = 0.45;
    variants.push_back(v);
  }
  {
    Variant v{"local: FedProx(mu=0.01, scaled work)", {}, base_engine};
    v.haccs.rho = 0.5;
    v.engine.algorithm = fl::LocalAlgorithm::FedProx;
    v.engine.fedprox_mu = 0.01;
    variants.push_back(v);
  }

  Table table({"variant", "clusters", "tta@50% (s)", "tta@80% (s)",
               "final_acc", "devices_included"});

  // Stratified coverage policy (one pick per cluster, rotating members) —
  // run first since it does not fit the Variant mold (no Eq. 7 weights).
  {
    std::fprintf(stderr, "  running stratified coverage...\n");
    core::HaccsConfig cfg;
    cfg.initial_loss = base_engine.initial_loss;
    core::StratifiedSelector selector(fed, cfg);
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 base_engine);
    const auto history = trainer.run(selector);
    const auto counts = history.selection_counts(fed.num_clients());
    std::size_t included = 0;
    for (std::size_t c : counts) {
      if (c > 0) ++included;
    }
    table.add_row({"policy: stratified coverage",
                   std::to_string(selector.num_clusters()),
                   fl::format_tta(history.time_to_accuracy(0.5)),
                   fl::format_tta(history.time_to_accuracy(0.8)),
                   Table::num(history.final_accuracy(), 3),
                   std::to_string(included) + "/" +
                       std::to_string(fed.num_clients())});
  }

  for (const auto& variant : variants) {
    std::fprintf(stderr, "  running %s...\n", variant.name.c_str());
    core::HaccsConfig cfg = variant.haccs;
    cfg.initial_loss = variant.engine.initial_loss;
    core::HaccsSelector selector(fed, cfg);
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 variant.engine);
    const auto history = trainer.run(selector);
    const auto counts = history.selection_counts(fed.num_clients());
    std::size_t included = 0;
    for (std::size_t c : counts) {
      if (c > 0) ++included;
    }
    table.add_row({variant.name, std::to_string(selector.num_clusters()),
                   fl::format_tta(history.time_to_accuracy(0.5)),
                   fl::format_tta(history.time_to_accuracy(0.8)),
                   Table::num(history.final_accuracy(), 3),
                   std::to_string(included) + "/" +
                       std::to_string(fed.num_clients())});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
