// Fig. 9 — Effect of the rho parameter (Eq. 7 latency/loss trade-off).
//
// Paper setup (§V-D3): CIFAR-10 with the main experiments' skewed labels,
// HACCS P(y) at rho in {0.01, 0.25, 0.5, 0.75, 0.99}. Expectation: larger
// rho (latency-favoring) converges to 50% faster — the noise labels give
// every cluster enough diversity that favoring fast clusters wins, and the
// law of large numbers still samples high-loss clusters occasionally.
//
// Flags: --rounds=N --seed=N --full --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::CifarLike;
  exp.rounds = 180;
  exp.apply_flags(flags);
  const double target = flags.get_double("target", 0.5);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Fig. 9 — rho sweep (HACCS P(y), cifar-like)",
      std::to_string(exp.num_clients) +
          " clients, majority skew, rho in {0.01, 0.25, 0.5, 0.75, 0.99}",
      "larger rho converges to 50% faster (latency weighting beats loss "
      "weighting when clusters hold 25% diverse noise labels)");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);
  const auto engine_config = exp.make_engine_config(fed);

  Table table({"rho", "tta@" + Table::num(100 * target, 0) + "% (s)",
               "final_acc", "best_acc"});
  for (double rho : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    core::HaccsConfig cfg;
    cfg.rho = rho;
    std::fprintf(stderr, "  running rho=%.2f...\n", rho);
    const auto history =
        bench::run_strategy("HACCS-P(y)", fed, engine_config, cfg);
    table.add_row({Table::num(rho, 2),
                   fl::format_tta(history.time_to_accuracy(target)),
                   Table::num(history.final_accuracy(), 3),
                   Table::num(history.best_accuracy(), 3)});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
