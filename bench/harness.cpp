#include "bench/harness.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "src/common/logging.hpp"
#include "src/common/table.hpp"
#include "src/obs/obs.hpp"
#include "src/select/dpp.hpp"
#include "src/select/fedlecc.hpp"
#include "src/select/hics.hpp"

namespace haccs::bench {

DatasetKind parse_dataset(const std::string& name) {
  if (name == "mnist") return DatasetKind::MnistLike;
  if (name == "femnist") return DatasetKind::FemnistLike;
  if (name == "cifar") return DatasetKind::CifarLike;
  throw std::invalid_argument("unknown dataset: " + name +
                              " (expected mnist|femnist|cifar)");
}

std::string to_string(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::MnistLike: return "mnist-like";
    case DatasetKind::FemnistLike: return "femnist-like";
    case DatasetKind::CifarLike: return "cifar-like";
  }
  throw std::invalid_argument("to_string: bad DatasetKind");
}

data::SyntheticImageGenerator ExperimentConfig::make_generator() const {
  data::SyntheticImageConfig cfg;
  switch (dataset) {
    case DatasetKind::MnistLike:
      cfg = data::SyntheticImageConfig::mnist_like();
      break;
    case DatasetKind::FemnistLike:
      cfg = data::SyntheticImageConfig::femnist_like(classes);
      break;
    case DatasetKind::CifarLike:
      cfg = data::SyntheticImageConfig::cifar_like();
      break;
  }
  cfg.classes = classes;
  if (!full_size) {
    cfg.height = 16;
    cfg.width = 16;
  }
  // Scale pixel noise so the task is hard enough that convergence spans many
  // rounds (the paper's accuracy curves rise gradually); without this the
  // synthetic classes separate almost immediately and every strategy looks
  // identical.
  cfg.noise_stddev *= noise_scale;
  return data::SyntheticImageGenerator(cfg);
}

fl::EngineConfig ExperimentConfig::make_engine_config(
    const data::FederatedDataset& fed) const {
  fl::EngineConfig cfg;
  cfg.rounds = rounds;
  cfg.clients_per_round = clients_per_round;
  cfg.eval_every = eval_every;
  cfg.seed = seed;
  cfg.local.epochs = local_epochs;
  cfg.local.batch_size = 32;
  cfg.local.sgd.learning_rate = learning_rate;
  // Size the serialized model like the MLP the default factory builds:
  // (C*H*W)*64 + 64*classes weights (+biases), 4 bytes each.
  const auto& shape = fed.clients.at(0).train.sample_shape();
  const std::size_t input = shape[0] * shape[1] * shape[2];
  cfg.latency.model_bytes = 4 * (input * 64 + 64 + 64 * fed.num_classes +
                                 fed.num_classes);
  cfg.latency.seconds_per_sample = 0.005;
  cfg.latency.local_epochs = local_epochs;
  cfg.initial_loss = std::log(static_cast<double>(fed.num_classes));
  return cfg;
}

data::PartitionConfig ExperimentConfig::make_partition_config() const {
  data::PartitionConfig cfg;
  cfg.num_clients = num_clients;
  cfg.min_samples = min_samples;
  cfg.max_samples = max_samples;
  cfg.test_samples = test_samples;
  // Per-device style jitter: real federated datasets differ per device in
  // features, not just labels (every FEMNIST writer has a hand). This gives
  // the P(X|y) summary genuine structure to measure.
  cfg.style_brightness_stddev = 0.2;
  cfg.style_contrast_stddev = 0.08;
  return cfg;
}

void ExperimentConfig::apply_flags(const Flags& flags) {
  dataset = parse_dataset(flags.get_string("dataset", "femnist"));
  full_size = flags.get_bool("full", false);
  rounds = static_cast<std::size_t>(flags.get_int("rounds", static_cast<std::int64_t>(rounds)));
  seed = static_cast<std::uint64_t>(flags.get_int("seed", static_cast<std::int64_t>(seed)));
  num_clients = static_cast<std::size_t>(
      flags.get_int("clients", static_cast<std::int64_t>(num_clients)));
  clients_per_round = static_cast<std::size_t>(
      flags.get_int("per-round", static_cast<std::int64_t>(clients_per_round)));
  classes = static_cast<std::size_t>(
      flags.get_int("classes", static_cast<std::int64_t>(classes)));
  noise_scale = flags.get_double("noise-scale", noise_scale);

  // Telemetry flags are shared by every binary that uses the harness.
  // obs::configure is a no-op (all pillars stay disabled) when no path is
  // given, so the default run carries only a relaxed atomic load per probe.
  const std::string level = flags.get_string("log-level", "");
  if (!level.empty()) set_log_level(parse_log_level(level));
  obs::Options obs_options;
  obs_options.trace_path = flags.get_string("trace", "");
  obs_options.metrics_path = flags.get_string("metrics", "");
  obs_options.events_path = flags.get_string("events", "");
  obs::configure(obs_options);
}

fl::TrainingHistory run_strategy(const std::string& name,
                                 const data::FederatedDataset& fed,
                                 const fl::EngineConfig& engine_config,
                                 const core::HaccsConfig& haccs_config,
                                 const sim::DropoutSchedule* dropout) {
  fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                               engine_config);
  std::unique_ptr<fl::ClientSelector> selector;
  if (name == "Random") {
    selector = std::make_unique<select::RandomSelector>();
  } else if (name == "TiFL") {
    select::TiflConfig cfg;
    cfg.expected_rounds = engine_config.rounds;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::TiflSelector>(cfg);
  } else if (name == "Oort") {
    select::OortConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::OortSelector>(cfg);
  } else if (name == "HACCS-P(y)") {
    core::HaccsConfig cfg = haccs_config;
    cfg.summary = stats::SummaryKind::Response;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<core::HaccsSelector>(fed, cfg);
  } else if (name == "HACCS-P(X|y)") {
    core::HaccsConfig cfg = haccs_config;
    cfg.summary = stats::SummaryKind::Conditional;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<core::HaccsSelector>(fed, cfg);
  } else if (name == "HACCS-Q(X|y)") {
    core::HaccsConfig cfg = haccs_config;
    cfg.summary = stats::SummaryKind::Quantile;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<core::HaccsSelector>(fed, cfg);
  } else if (name == "DPP") {
    select::DppConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::DppSelector>(fed, cfg);
  } else if (name == "FedLECC") {
    select::FedLeccConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::FedLeccSelector>(fed, cfg);
  } else if (name == "HiCS") {
    select::HicsConfig cfg;
    cfg.initial_loss = engine_config.initial_loss;
    selector = std::make_unique<select::HicsSelector>(fed, cfg);
  } else {
    throw std::invalid_argument("unknown strategy: " + name);
  }
  if (dropout) return trainer.run(*selector, *dropout);
  return trainer.run(*selector);
}

std::vector<StrategyRun> run_all_strategies(
    const data::FederatedDataset& fed, const fl::EngineConfig& engine_config,
    const core::HaccsConfig& haccs_config,
    const sim::DropoutSchedule* dropout) {
  std::vector<StrategyRun> runs;
  for (const std::string name :
       {"Random", "TiFL", "Oort", "HACCS-P(y)", "HACCS-P(X|y)"}) {
    std::fprintf(stderr, "  running %s...\n", name.c_str());
    runs.push_back(
        {name, run_strategy(name, fed, engine_config, haccs_config, dropout)});
  }
  return runs;
}

std::map<std::string, std::map<double, double>> print_tta_table(
    const std::vector<StrategyRun>& runs, const std::vector<double>& targets,
    const std::string& csv_path) {
  std::vector<std::string> header = {"strategy"};
  for (double t : targets) {
    header.push_back("tta@" + Table::num(100.0 * t, 0) + "% (s)");
  }
  header.push_back("final_acc");
  header.push_back("best_acc");
  header.push_back("uplink_mb");
  header.push_back("downlink_mb");
  Table table(header);

  std::map<std::string, std::map<double, double>> out;
  for (const auto& run : runs) {
    std::vector<std::string> row = {run.name};
    for (double t : targets) {
      const double tta = run.history.time_to_accuracy(t);
      out[run.name][t] = tta;
      row.push_back(fl::format_tta(tta));
    }
    row.push_back(Table::num(run.history.final_accuracy(), 3));
    row.push_back(Table::num(run.history.best_accuracy(), 3));
    // Communication totals, priced as real wire frames (fl/protocol.hpp).
    constexpr double kMiB = 1024.0 * 1024.0;
    row.push_back(Table::num(
        static_cast<double>(run.history.total_uplink_bytes()) / kMiB, 2));
    row.push_back(Table::num(
        static_cast<double>(run.history.total_downlink_bytes()) / kMiB, 2));
    table.add_row(std::move(row));
  }
  table.print();
  if (!csv_path.empty()) table.write_csv(csv_path);
  return out;
}

void print_curves(const std::vector<StrategyRun>& runs,
                  const std::string& csv_path) {
  Table table({"strategy", "epoch", "sim_time_s", "accuracy"});
  for (const auto& run : runs) {
    double last_reported = -1.0;
    for (const auto& r : run.history.records()) {
      // Only emit actual evaluation points (accuracy carries forward
      // between evals — skip unchanged duplicates).
      if (r.global_accuracy == last_reported) continue;
      last_reported = r.global_accuracy;
      table.add_row({run.name, std::to_string(r.epoch),
                     Table::num(r.sim_time_s, 1),
                     Table::num(r.global_accuracy, 4)});
    }
  }
  table.print();
  if (!csv_path.empty()) table.write_csv(csv_path);
}

void print_header(const std::string& experiment, const std::string& workload,
                  const std::string& paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("workload: %s\n", workload.c_str());
  std::printf("paper expectation: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace haccs::bench
