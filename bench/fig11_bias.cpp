// Table III + Fig. 11 — Scheduling bias at rho = 0.01.
//
// Paper setup (§V-D5): the feature-skew workload trained for 200 epochs with
// a strong preference for loss over latency (rho = 0.01). Two readings:
//   * Table III — per cluster, the fraction of member devices included in
//     training at least once, bucketed 0-50% / 50-75% / 75-100%. Paper: no
//     cluster below 50%; most clusters (8/10 P(y), 30/31 P(X|y)) above 75%.
//   * Fig. 11 — per cluster, final-model accuracy difference between the
//     fastest and the slowest member. Paper: near zero, sometimes negative;
//     larger positive gaps for P(y) clusters (hidden feature skew).
//
// Flags: --rounds=N --seed=N --full --rho=R --csv=<prefix>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::MnistLike;
  exp.rounds = 200;
  exp.apply_flags(flags);
  const double rho = flags.get_double("rho", 0.01);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Table III + Fig. 11 — scheduling bias at rho=" + Table::num(rho, 2),
      "feature-skew workload (45 deg), " + std::to_string(exp.rounds) +
          " epochs, HACCS P(y) and P(X|y)",
      "Table III: every cluster includes >= 50% of devices; most >= 75%. "
      "Fig. 11: fastest-vs-slowest accuracy gaps near zero, occasionally "
      "negative; P(y) shows the larger gaps (hidden feature skew)");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed = data::partition_feature_skew(
      gen, exp.make_partition_config(), 45.0, rng);
  const auto engine_config = exp.make_engine_config(fed);

  Table inclusion({"summary", "clusters", "0-50%", "50-75%", "75-100%"});
  Table gaps({"summary", "cluster", "members", "fastest_acc", "slowest_acc",
              "gap (fast - slow)"});

  for (const auto kind :
       {stats::SummaryKind::Response, stats::SummaryKind::Conditional}) {
    core::HaccsConfig cfg;
    cfg.summary = kind;
    cfg.rho = rho;
    cfg.initial_loss = engine_config.initial_loss;
    core::HaccsSelector selector(fed, cfg);
    std::fprintf(stderr, "  running HACCS-%s (%zu clusters)...\n",
                 stats::to_string(kind).c_str(), selector.num_clusters());

    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 engine_config);
    const auto history = trainer.run(selector);
    const auto counts = history.selection_counts(fed.num_clients());
    const auto& accuracy = trainer.final_per_client_accuracy();

    // Table III buckets.
    int bucket_low = 0, bucket_mid = 0, bucket_high = 0;
    for (const auto& members : selector.clusters()) {
      std::size_t included = 0;
      for (std::size_t id : members) {
        if (counts[id] > 0) ++included;
      }
      const double fraction =
          static_cast<double>(included) / static_cast<double>(members.size());
      if (fraction <= 0.5) {
        ++bucket_low;
      } else if (fraction <= 0.75) {
        ++bucket_mid;
      } else {
        ++bucket_high;
      }
    }
    inclusion.add_row({stats::to_string(kind),
                       std::to_string(selector.num_clusters()),
                       std::to_string(bucket_low), std::to_string(bucket_mid),
                       std::to_string(bucket_high)});

    // Fig. 11 gaps: fastest vs slowest member by base latency.
    for (std::size_t c = 0; c < selector.clusters().size(); ++c) {
      const auto& members = selector.clusters()[c];
      std::size_t fastest = members[0], slowest = members[0];
      for (std::size_t id : members) {
        if (trainer.client_latency(id) < trainer.client_latency(fastest)) {
          fastest = id;
        }
        if (trainer.client_latency(id) > trainer.client_latency(slowest)) {
          slowest = id;
        }
      }
      const double gap = accuracy[fastest] - accuracy[slowest];
      gaps.add_row({stats::to_string(kind), std::to_string(c),
                    std::to_string(members.size()),
                    Table::num(accuracy[fastest], 3),
                    Table::num(accuracy[slowest], 3), Table::num(gap, 3)});
    }
  }

  std::printf("\nTable III — device inclusion over %zu epochs:\n", exp.rounds);
  inclusion.print();
  if (!csv.empty()) inclusion.write_csv(csv + "_table3.csv");
  std::printf("\nFig. 11 — accuracy gap fastest vs slowest per cluster:\n");
  gaps.print();
  if (!csv.empty()) gaps.write_csv(csv + "_fig11.csv");
  return 0;
}
