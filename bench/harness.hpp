// Shared experiment harness for the paper-reproduction benchmarks.
//
// Every bench binary builds a workload through ExperimentConfig, runs the
// five client-selection strategies of §V-A on an identical substrate (same
// data, device profiles, dropout draws), and prints paper-style rows plus
// the paper's expectation for that figure/table. Pass --full for the paper's
// 28x28/32x32 image sizes (slower); the default uses 16x16 images so the
// whole suite completes quickly on one core — orderings are preserved.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/flags.hpp"
#include "src/core/haccs_system.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"
#include "src/select/tifl.hpp"

namespace haccs::bench {

/// Which synthetic dataset family a bench uses (DESIGN.md §4 substitution 1).
enum class DatasetKind { MnistLike, FemnistLike, CifarLike };

DatasetKind parse_dataset(const std::string& name);
std::string to_string(DatasetKind kind);

struct ExperimentConfig {
  DatasetKind dataset = DatasetKind::FemnistLike;
  std::size_t classes = 10;
  bool full_size = false;         ///< paper-size images vs fast 16x16
  std::size_t num_clients = 50;   ///< paper §V-A testbed
  std::size_t clients_per_round = 10;
  std::size_t rounds = 240;
  std::size_t min_samples = 90;
  std::size_t max_samples = 210;
  std::size_t test_samples = 30;
  std::size_t eval_every = 5;
  double learning_rate = 0.08;
  std::size_t local_epochs = 1;
  double noise_scale = 2.0;  ///< difficulty knob (multiplies preset noise)
  std::uint64_t seed = 1;

  /// Builds the generator for the configured dataset/size.
  data::SyntheticImageGenerator make_generator() const;

  /// Engine config matching this experiment (latency model sized to the
  /// MLP the default factory builds).
  fl::EngineConfig make_engine_config(const data::FederatedDataset& fed) const;

  /// Reads the standard sweep flags (--dataset, --full, --rounds, --seed,
  /// --clients, --per-round) plus the telemetry flags shared by every
  /// binary that links the harness: --trace=FILE (Chrome trace JSON),
  /// --metrics=FILE (metrics snapshot JSON), --events=FILE (per-round
  /// JSONL), --log-level=error|warn|info|debug. Telemetry files are
  /// flushed automatically at process exit (obs::configure registers an
  /// atexit hook), so bench mains need no explicit teardown.
  void apply_flags(const Flags& flags);

  /// Partition config with the experiment's client counts, sample ranges,
  /// and the default per-client style jitter (the stand-in for natural
  /// per-device feature heterogeneity — DESIGN.md §4).
  data::PartitionConfig make_partition_config() const;
};

/// One named strategy run.
struct StrategyRun {
  std::string name;
  fl::TrainingHistory history;
};

/// Runs Random / TiFL / Oort / HACCS-P(y) / HACCS-P(X|y) on the same
/// substrate. `haccs_config` seeds both HACCS variants (the summary kind is
/// overridden per variant). Optional dropout schedule applies to all.
std::vector<StrategyRun> run_all_strategies(
    const data::FederatedDataset& fed, const fl::EngineConfig& engine_config,
    const core::HaccsConfig& haccs_config,
    const sim::DropoutSchedule* dropout = nullptr);

/// Runs a single named strategy.
fl::TrainingHistory run_strategy(const std::string& name,
                                 const data::FederatedDataset& fed,
                                 const fl::EngineConfig& engine_config,
                                 const core::HaccsConfig& haccs_config,
                                 const sim::DropoutSchedule* dropout = nullptr);

/// Prints a TTA summary table: one row per strategy, one column per target
/// accuracy, plus final accuracy. Returns TTA values keyed by
/// (strategy, target).
std::map<std::string, std::map<double, double>> print_tta_table(
    const std::vector<StrategyRun>& runs, const std::vector<double>& targets,
    const std::string& csv_path = "");

/// Prints accuracy-vs-time curves (the Fig. 5/6 series) at each recorded
/// evaluation point.
void print_curves(const std::vector<StrategyRun>& runs,
                  const std::string& csv_path = "");

/// Standard banner: experiment id, workload description, paper expectation.
void print_header(const std::string& experiment, const std::string& workload,
                  const std::string& paper_expectation);

}  // namespace haccs::bench
