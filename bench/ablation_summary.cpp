// Ablation — summary kind (DESIGN.md §5; paper §V-E: "different kinds of
// privacy-preserving data summaries could also affect performance in HACCS
// and could be a future topic of research").
//
// Four summaries drive the same scheduler on the Fig. 5 workload:
//   * P(y)      — label histogram (the paper's primary choice);
//   * P(X|y)    — per-label feature histograms;
//   * Q(X|y)    — per-label feature quantile sketches (this library's
//                 extension: more compact than histograms at equal
//                 resolution);
//   * gradient  — update-direction clusters (§IV-A's alternative, needing
//                 constant re-clustering).
// Reported per kind: transmitted summary size, cluster count, TTA, bias
// audit (participation Gini, accuracy spread).
//
// Flags: --rounds=N --seed=N --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/core/gradient_selector.hpp"
#include "src/fl/evaluation.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::FemnistLike;
  exp.rounds = 180;
  exp.apply_flags(flags);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Ablation — summary kind (femnist-like, majority skew)",
      "P(y) vs P(X|y) vs Q(X|y) vs gradient clusters, same scheduler",
      "P(y) is the cheapest summary and the fastest scheduler; feature "
      "summaries cost Θ(c·p) bytes and fragment under per-device style "
      "heterogeneity; gradient clusters adapt but re-cluster constantly");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);
  const auto engine_config = exp.make_engine_config(fed);

  // Summary sizes (in doubles) for the communication-cost column (§IV-A).
  const auto response_size =
      stats::summary_size(stats::summarize_response(fed.clients[0].train));
  core::HaccsConfig size_probe;
  const auto conditional_size = stats::summary_size(stats::summarize_conditional(
      fed.clients[0].train, size_probe.conditional));
  const auto quantile_probe =
      stats::summarize_quantiles(fed.clients[0].train, size_probe.quantile);
  std::size_t quantile_size = quantile_probe.mass.size();
  for (const auto& qs : quantile_probe.per_label) quantile_size += qs.size();

  struct Variant {
    std::string strategy;
    std::string size;
  };
  const std::vector<Variant> variants = {
      {"HACCS-P(y)", std::to_string(response_size)},
      {"HACCS-P(X|y)", std::to_string(conditional_size)},
      {"HACCS-Q(X|y)", std::to_string(quantile_size)},
  };

  Table table({"summary", "bytes (doubles)", "tta@50% (s)", "tta@80% (s)",
               "final_acc", "participation_gini", "acc_spread"});
  core::HaccsConfig haccs;
  haccs.rho = 0.5;

  auto audit_row = [&](const std::string& name, const std::string& size,
                       const fl::TrainingHistory& history,
                       const std::vector<double>& per_client) {
    const auto counts = history.selection_counts(fed.num_clients());
    table.add_row({name, size,
                   fl::format_tta(history.time_to_accuracy(0.5)),
                   fl::format_tta(history.time_to_accuracy(0.8)),
                   Table::num(history.final_accuracy(), 3),
                   Table::num(fl::participation_gini(counts), 3),
                   Table::num(fl::accuracy_spread(per_client), 3)});
  };

  for (const auto& variant : variants) {
    std::fprintf(stderr, "  running %s...\n", variant.strategy.c_str());
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 engine_config);
    core::HaccsConfig cfg = haccs;
    cfg.initial_loss = engine_config.initial_loss;
    cfg.summary = stats::parse_summary_kind(
        variant.strategy.substr(std::string("HACCS-").size()));
    core::HaccsSelector selector(fed, cfg);
    const auto history = trainer.run(selector);
    audit_row(variant.strategy + " (" + std::to_string(selector.num_clusters()) +
                  " clusters)",
              variant.size, history, trainer.final_per_client_accuracy());
  }
  {
    std::fprintf(stderr, "  running gradient clusters...\n");
    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 engine_config);
    core::GradientSelectorConfig cfg;
    cfg.scheduling.rho = 0.5;
    cfg.scheduling.initial_loss = engine_config.initial_loss;
    core::GradientClusterSelector selector(cfg);
    const auto history = trainer.run(selector);
    audit_row("gradient (" + std::to_string(selector.num_clusters()) +
                  " clusters)",
              std::to_string(cfg.sketch_dim), history,
              trainer.final_per_client_accuracy());
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
