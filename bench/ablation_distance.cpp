// Ablation — summary distance function (DESIGN.md §5; paper §V-E names
// alternative summaries/distances as future work).
//
// The paper chose Hellinger (Eq. 3) for boundedness and zero tolerance.
// This ablation swaps in total variation, Jensen-Shannon, symmetric KL, and
// cosine, measuring (a) clustering recovery on the Fig. 8a layout, clean and
// under DP noise, and (b) TTA when the full scheduler runs on each.
//
// Flags: --rounds=N --seed=N --skip-training --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::CifarLike;
  exp.rounds = 150;
  exp.apply_flags(flags);
  const bool skip_training = flags.get_bool("skip-training", false);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Ablation — summary distance function (P(y))",
      "clustering recovery on 20 clients / 10 groups (clean + eps=0.1), and "
      "TTA@50% on the Fig. 5 workload",
      "Hellinger (the paper's choice) should be matched by TV/JS on clean "
      "data; differences emerge under DP noise where boundedness and zero "
      "handling matter");

  const std::vector<stats::DistanceKind> kinds = {
      stats::DistanceKind::Hellinger, stats::DistanceKind::TotalVariation,
      stats::DistanceKind::JensenShannon, stats::DistanceKind::SymmetricKl,
      stats::DistanceKind::Cosine};

  auto gen = exp.make_generator();
  Rng pair_rng(exp.seed);
  const auto pairs = data::partition_two_per_label(gen, 500, 10, pair_rng);

  Table table({"distance", "recovery_clean", "recovery_eps0.1",
               "tta@50% (s)"});
  std::optional<data::FederatedDataset> train_fed;
  std::optional<fl::EngineConfig> engine_config;
  if (!skip_training) {
    Rng rng(exp.seed);
    train_fed = data::partition_majority_label(
        gen, exp.make_partition_config(), rng);
    engine_config = exp.make_engine_config(*train_fed);
  }

  for (auto kind : kinds) {
    core::HaccsConfig cfg;
    cfg.response_distance = kind;
    const auto clean = core::cluster_clients(pairs, cfg);
    const double clean_score =
        stats::exact_cluster_recovery(clean, pairs.true_group);

    double noisy_score = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      core::HaccsConfig noisy_cfg = cfg;
      noisy_cfg.privacy = stats::PrivacyConfig{0.1};
      noisy_cfg.privacy_seed = exp.seed * 100 + rep;
      const auto noisy = core::cluster_clients(pairs, noisy_cfg);
      noisy_score += stats::exact_cluster_recovery(noisy, pairs.true_group);
    }
    noisy_score /= 5.0;

    std::string tta = "-";
    if (!skip_training) {
      std::fprintf(stderr, "  training with %s...\n",
                   stats::to_string(kind).c_str());
      core::HaccsConfig sched = cfg;
      sched.rho = 0.5;
      const auto history = bench::run_strategy("HACCS-P(y)", *train_fed,
                                               *engine_config, sched);
      tta = fl::format_tta(history.time_to_accuracy(0.5));
    }
    table.add_row({stats::to_string(kind), Table::num(clean_score, 2),
                   Table::num(noisy_score, 2), tta});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
