// Fault-tolerance sweep — TTA under mid-round crashes, with and without
// deadline-based over-selection (robustness extension, no paper analogue).
//
// The paper's §V-C dropout experiments only remove clients *before*
// selection; this sweep injects seeded mid-round crashes (FaultModel) at
// rates {0, 5, 15, 30}% and compares Random/TiFL/Oort/HACCS twice per rate:
// plain synchronous rounds, and hardened rounds (over-selection + deadline +
// circuit breaker). Expectation: without hardening every strategy's TTA
// degrades roughly in proportion to the crash rate (each crash wastes the
// whole round's straggler wait); with it, HACCS degrades least because
// report_failure re-samples a same-cluster stand-in, preserving the cluster
// coverage that drives its convergence.
//
// Flags: --rounds=N --seed=N --full --overcommit=F --deadline=Q
//        --corruption=F --straggler=F --flaky=F --flaky-boost=F
//        --csv=<prefix>
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::FemnistLike;
  exp.rounds = 160;
  exp.apply_flags(flags);
  const double overcommit = flags.get_double("overcommit", 0.5);
  const double deadline_q = flags.get_double("deadline", 0.9);
  const double corruption = flags.get_double("corruption", 0.0);
  const double straggler = flags.get_double("straggler", 0.0);
  const double flaky = flags.get_double("flaky", 0.0);
  const double flaky_boost = flags.get_double("flaky-boost", 4.0);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Faults — mid-round crash sweep with deadline-based over-selection",
      std::to_string(exp.num_clients) + " clients, " +
          std::to_string(exp.clients_per_round) +
          "/round, crash rates {0,5,15,30}%, overcommit " +
          std::to_string(overcommit) + ", deadline q" +
          std::to_string(deadline_q),
      "hardened rounds (over-select + deadline) recover most of the clean "
      "TTA at every crash rate; HACCS degrades least (same-cluster "
      "re-sampling keeps every distribution represented)");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);
  core::HaccsConfig haccs;
  haccs.rho = 0.5;

  const std::vector<double> crash_rates = {0.0, 0.05, 0.15, 0.30};
  const std::vector<std::string> strategies = {"Random", "TiFL", "Oort",
                                               "HACCS-P(X|y)"};
  const double target = 0.7;

  Table table({"strategy", "crash_rate", "hardened", "tta@70% (s)",
               "final_acc", "dispatched", "wasted", "waste_frac"});
  for (double crash_rate : crash_rates) {
    for (int hardened = 0; hardened <= 1; ++hardened) {
      auto engine = exp.make_engine_config(fed);
      engine.faults.crash_rate = crash_rate;
      engine.faults.corruption_rate = corruption;
      engine.faults.straggler_rate = straggler;
      engine.faults.flaky_fraction = flaky;
      engine.faults.flaky_crash_boost = flaky_boost;
      engine.faults.seed = exp.seed + 977;
      if (hardened) {
        engine.overcommit = overcommit;
        engine.deadline_quantile = deadline_q;
      }
      for (const auto& name : strategies) {
        std::fprintf(stderr, "  crash=%.0f%% %s %s...\n", 100.0 * crash_rate,
                     hardened ? "hardened" : "plain", name.c_str());
        const auto history =
            bench::run_strategy(name, fed, engine, haccs, nullptr);
        const std::size_t dispatched = history.total_dispatched();
        const std::size_t wasted = history.total_wasted();
        table.add_row(
            {name, Table::num(crash_rate, 2), hardened ? "yes" : "no",
             fl::format_tta(history.time_to_accuracy(target)),
             Table::num(history.final_accuracy(), 3),
             std::to_string(dispatched), std::to_string(wasted),
             Table::num(dispatched > 0 ? static_cast<double>(wasted) /
                                             static_cast<double>(dispatched)
                                       : 0.0,
                        3)});
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv + "_faults.csv");
  return 0;
}
