// Fig. 7 — Time to 50% accuracy across degrees of label skew (CIFAR-like).
//
// Paper setup (§V-D1): three partitions — IID (all 10 labels per client,
// equal sizes), 5 random labels per client, and highly skewed (one majority
// label plus noise labels). Expectation: with IID data P(y) collapses to one
// cluster and matches Oort (select the fastest clients); with skew both
// HACCS variants beat TiFL/Oort (P(y): 16%/35% at 5 labels, 36%/38% at high
// skew), and everything beats Random.
//
// Flags: --rounds=N --seed=N --full --csv=<path> --cluster=optics|dbscan
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::CifarLike;
  exp.rounds = 180;
  exp.apply_flags(flags);
  const std::string cluster_algo = flags.get_string("cluster", "optics");
  const double target = flags.get_double("target", 0.5);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Fig. 7 — TTA@" + Table::num(100 * target, 0) +
          "% vs degree of label skew (cifar-like)",
      std::to_string(exp.num_clients) + " clients, " +
          std::to_string(exp.clients_per_round) +
          "/round; partitions: IID / 5 random labels / highly skewed; "
          "clustering=" + cluster_algo,
      "IID: P(y) ~ Oort fastest (single cluster -> fastest clients), "
      "P(X|y) only beats Random; skewed: both HACCS variants beat TiFL and "
      "Oort (paper: 16-36% vs TiFL, 35-38% vs Oort); IID runs beat all "
      "skewed runs");

  auto gen = exp.make_generator();

  core::HaccsConfig haccs;
  haccs.rho = 0.5;
  if (cluster_algo == "dbscan") {
    haccs.algorithm = core::ClusterAlgorithm::Dbscan;
    haccs.dbscan.eps = 0.3;
  } else if (cluster_algo != "optics") {
    std::fprintf(stderr, "unknown --cluster=%s\n", cluster_algo.c_str());
    return 1;
  }

  struct SkewLevel {
    std::string name;
    data::FederatedDataset fed;
  };
  std::vector<SkewLevel> levels;
  {
    Rng rng(exp.seed);
    levels.push_back({"IID", data::partition_iid(
                                 gen, exp.make_partition_config(), rng)});
  }
  {
    Rng rng(exp.seed);
    levels.push_back(
        {"5-labels", data::partition_k_random_labels(
                         gen, exp.make_partition_config(), 5, rng)});
  }
  {
    Rng rng(exp.seed);
    levels.push_back({"high-skew", data::partition_majority_label(
                                       gen, exp.make_partition_config(), rng)});
  }

  Table table({"skew", "strategy", "tta@" + Table::num(100 * target, 0) + "% (s)",
               "final_acc"});
  for (auto& level : levels) {
    std::fprintf(stderr, "skew level: %s\n", level.name.c_str());
    const auto engine_config = exp.make_engine_config(level.fed);
    const auto runs =
        bench::run_all_strategies(level.fed, engine_config, haccs);
    for (const auto& run : runs) {
      table.add_row({level.name, run.name,
                     fl::format_tta(run.history.time_to_accuracy(target)),
                     Table::num(run.history.final_accuracy(), 3)});
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
