// Selector zoo under a hostile world — six strategies, benign vs hostile.
//
// Compares the three baselines (TiFL, Oort, HACCS-P(y)) against the three
// literature selectors added with the zoo (DPP, FedLECC, HiCS) on an
// identical substrate, twice: a benign run (full availability, no faults)
// and a hostile composite stacking the scenario engine's shapes — a diurnal
// availability wave intersected with a correlated regional outage, 10%
// mid-round crashes under a q0.9 round deadline, an adversarial
// targeted-straggler cohort from mid-run, plus a label-drift shock that
// redraws 30% of clients' mixtures halfway through. Columns are
// the headline pair from the issue: rounds-to-target-accuracy and wasted
// client-rounds (dispatched but never aggregated).
//
// Expectation: under the benign run the cluster-aware selectors (HACCS,
// FedLECC) and the diversity kernel (DPP) reach the target in comparable
// rounds; under the hostile composite HACCS degrades least (report_failure
// re-samples a same-cluster stand-in and the drift shock triggers
// re-clustering), while latency-greedy strategies bleed rounds to the
// targeted cohort and waste climbs for everyone.
//
// Flags: --rounds=N --seed=N --full --target=F --csv=<prefix>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/sim/dropout.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::FemnistLike;
  exp.rounds = 160;
  exp.apply_flags(flags);
  const double target = flags.get_double("target", 0.7);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Selector zoo — six strategies, benign vs hostile world",
      std::to_string(exp.num_clients) + " clients, " +
          std::to_string(exp.clients_per_round) + "/round, " +
          std::to_string(exp.rounds) +
          " rounds; hostile = diurnal wave ∧ regional outage + 10% crashes "
          "under a q0.9 deadline + targeted stragglers + 30% label drift",
      "cluster-aware selectors (HACCS, FedLECC) lose the fewest rounds to "
      "the hostile composite; latency-greedy ranking bleeds rounds to the "
      "targeted cohort and every strategy's waste climbs");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);
  core::HaccsConfig haccs;
  haccs.rho = 0.5;

  const std::vector<std::string> strategies = {"TiFL",    "Oort", "HACCS-P(y)",
                                               "DPP", "FedLECC", "HiCS"};

  // The hostile availability mask: a diurnal wave (30% trough every 12
  // epochs) intersected with a regional outage (1 of 4 regions dark for the
  // middle half of the run). Same composition the scenario engine uses.
  const std::size_t quarter = exp.rounds / 4;
  const auto hostile_schedule = sim::make_intersection(
      sim::make_diurnal_wave(exp.num_clients, 0.3, 12, exp.seed + 211),
      sim::make_regional_outage(exp.num_clients, 4, 0.25, quarter,
                                2 * quarter, exp.seed + 211));

  Table table({"strategy", "world", "rounds@" + Table::num(target, 2),
               "tta (s)", "final_acc", "dispatched", "wasted", "waste_frac"});
  for (int hostile = 0; hostile <= 1; ++hostile) {
    for (const auto& name : strategies) {
      std::fprintf(stderr, "  %s %s...\n", hostile ? "hostile" : "benign",
                   name.c_str());
      // Drift mutates the dataset in place (the trainer holds a const
      // reference), so every run gets its own working copy.
      data::FederatedDataset working = fed;
      auto engine = exp.make_engine_config(working);
      const sim::DropoutSchedule* schedule = nullptr;
      if (hostile) {
        schedule = hostile_schedule.get();
        engine.faults.crash_rate = 0.1;
        engine.faults.targeted_fraction = 0.2;
        engine.faults.targeted_from = quarter;
        engine.faults.seed = exp.seed + 977;
        // A deadline turns the targeted cohort's slowdown into real waste
        // (late updates are discarded) instead of an unbounded round stall.
        engine.deadline_quantile = 0.9;
        engine.on_epoch_begin = [&working, &gen, half = 2 * quarter,
                                 seed = exp.seed + 307](std::size_t epoch) {
          if (epoch != half) return;
          Rng drift_rng(seed);
          data::apply_label_drift(working, gen, 0.3, drift_rng);
        };
      }
      const auto history =
          bench::run_strategy(name, working, engine, haccs, schedule);
      const std::size_t rounds = history.epochs_to_accuracy(target);
      const std::size_t dispatched = history.total_dispatched();
      const std::size_t wasted = history.total_wasted();
      table.add_row(
          {name, hostile ? "hostile" : "benign",
           rounds == static_cast<std::size_t>(-1) ? "never"
                                                  : std::to_string(rounds),
           fl::format_tta(history.time_to_accuracy(target)),
           Table::num(history.final_accuracy(), 3), std::to_string(dispatched),
           std::to_string(wasted),
           Table::num(dispatched > 0 ? static_cast<double>(wasted) /
                                           static_cast<double>(dispatched)
                                     : 0.0,
                      3)});
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv + "_selector_zoo.csv");
  return 0;
}
