// Fig. 8a — Privacy loss epsilon vs clustering accuracy, P(y) summary.
//
// Paper setup (§V-D2): 20 clients, exactly two per CIFAR-10 label with a
// 70/10/10/10 mixture — ground truth is 10 clusters of 2. For each epsilon
// the clustering runs 10 times (fresh noise draws) and accuracy = fraction
// of ground-truth clusters exactly recovered, averaged. Data sizes m in
// {100, 500, 1000}. Expectation: accuracy stays high for eps >= 0.05 at
// m >= 500; very small eps (< 0.01) destroys clustering at every size; at
// m = 100 the decline is smoother across eps.
//
// Flags: --seed=N --reps=N --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/stats/metrics.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::CifarLike;
  exp.apply_flags(flags);
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 10));
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Fig. 8a — epsilon vs clustering accuracy (P(y), cifar-like)",
      "20 clients (2 per label, 70/10/10/10), m in {100, 500, 1000}, " +
          std::to_string(reps) + " noise draws per point",
      "accuracy ~1.0 for eps >= 0.05 when m >= 500; eps < 0.01 destroys "
      "clustering; m = 100 declines smoothly across eps (all 95% CI "
      "margins < 0.1)");

  auto gen = exp.make_generator();
  const std::vector<double> epsilons = {0.001, 0.005, 0.01,
                                        0.05,  0.1,   0.5, 1.0};
  const std::vector<std::size_t> data_sizes = {100, 500, 1000};

  Table table({"epsilon", "m=100", "m=500", "m=1000"});
  std::vector<std::vector<std::string>> rows;
  for (double eps : epsilons) {
    std::vector<std::string> row = {Table::num(eps, 3)};
    for (std::size_t m : data_sizes) {
      Rng data_rng(exp.seed);
      const auto fed = data::partition_two_per_label(gen, m, 10, data_rng);
      std::vector<double> scores;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        core::HaccsConfig cfg;
        cfg.summary = stats::SummaryKind::Response;
        cfg.privacy = stats::PrivacyConfig{eps};
        cfg.privacy_seed = exp.seed * 1000 + rep;
        const auto labels = core::cluster_clients(fed, cfg);
        scores.push_back(
            stats::exact_cluster_recovery(labels, fed.true_group));
      }
      const auto ci = stats::mean_ci95(scores);
      row.push_back(Table::num(ci.mean, 3) + " ±" + Table::num(ci.margin, 3));
    }
    rows.push_back(row);
    std::fprintf(stderr, "  eps=%g done\n", eps);
  }
  for (auto& row : rows) table.add_row(std::move(row));
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
