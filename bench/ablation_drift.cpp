// Ablation — distribution drift and dynamic re-clustering (paper §IV-C:
// "our framework can adapt in real time to shifts in data distribution").
//
// Mid-training, a fraction of clients' label distributions are re-drawn
// (apply_label_drift). Three schedulers compete on the same drifting
// substrate: HACCS with stale clusters (clustered once at the start), HACCS
// re-clustering every 10 epochs, and the gradient-direction scheduler
// (§IV-A's alternative summary, which must re-cluster constantly because
// gradients change every epoch).
//
// Flags: --rounds=N --seed=N --drift-epoch=N --drift-fraction=F --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/core/gradient_selector.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::FemnistLike;
  exp.rounds = 200;
  exp.apply_flags(flags);
  const auto drift_epoch =
      static_cast<std::size_t>(flags.get_int("drift-epoch", 80));
  const double drift_fraction = flags.get_double("drift-fraction", 0.5);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Ablation — drift adaptation (femnist-like)",
      Table::num(100 * drift_fraction, 0) + "% of clients redraw their label "
      "mixture at epoch " + std::to_string(drift_epoch),
      "re-clustering recovers faster after the drift than the stale static "
      "clustering; gradient clusters adapt but pay their per-epoch "
      "re-clustering overhead in selection quality");

  auto gen = exp.make_generator();

  struct Variant {
    std::string name;
    std::size_t recluster_every;  // 0 = static
    bool gradient = false;
  };
  const std::vector<Variant> variants = {
      {"HACCS-P(y) static clusters", 0, false},
      {"HACCS-P(y) recluster every 10", 10, false},
      {"gradient clusters (recluster every 5)", 0, true},
  };

  Table table({"variant", "acc_before_drift", "acc_after_drift(+20ep)",
               "final_acc", "tta@80% (s)"});
  for (const auto& variant : variants) {
    std::fprintf(stderr, "  running %s...\n", variant.name.c_str());
    // Fresh identical dataset per variant (drift mutates it in place).
    Rng rng(exp.seed);
    auto fed =
        data::partition_majority_label(gen, exp.make_partition_config(), rng);

    auto engine_config = exp.make_engine_config(fed);
    Rng drift_rng(exp.seed + 71);
    engine_config.on_epoch_begin = [&](std::size_t epoch) {
      if (epoch == drift_epoch) {
        data::apply_label_drift(fed, gen, drift_fraction, drift_rng);
      }
    };

    fl::FederatedTrainer trainer(fed, core::default_model_factory(fed, 99),
                                 engine_config);
    std::unique_ptr<fl::ClientSelector> selector;
    if (variant.gradient) {
      core::GradientSelectorConfig cfg;
      cfg.recluster_every = 5;
      cfg.scheduling.rho = 0.5;
      cfg.scheduling.initial_loss = engine_config.initial_loss;
      selector = std::make_unique<core::GradientClusterSelector>(cfg);
    } else {
      core::HaccsConfig cfg;
      cfg.rho = 0.5;
      cfg.recluster_every = variant.recluster_every;
      cfg.initial_loss = engine_config.initial_loss;
      selector = std::make_unique<core::HaccsSelector>(fed, cfg);
    }
    const auto history = trainer.run(*selector);

    // Accuracy just before the drift and 20 epochs after it.
    double before = 0.0, after = 0.0;
    for (const auto& r : history.records()) {
      if (r.epoch <= drift_epoch) before = r.global_accuracy;
      if (r.epoch <= drift_epoch + 20) after = r.global_accuracy;
    }
    table.add_row({variant.name, Table::num(before, 3), Table::num(after, 3),
                   Table::num(history.final_accuracy(), 3),
                   fl::format_tta(history.time_to_accuracy(0.8))});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
