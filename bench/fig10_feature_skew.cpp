// Fig. 10 — Performance with both label and feature skew (rotated MNIST).
//
// Paper setup (§V-D4): modified MNIST where clients whose majority label is
// odd rotate all their images 45°; label skew as in the main experiments.
// P(y) cannot see the rotation (it only reads labels), so its clusters mix
// rotated and upright devices; P(X|y) separates them. Expectation: P(X|y)
// reaches the target accuracy fastest, with P(y) and TiFL a few percent
// behind.
//
// Flags: --rounds=N --seed=N --full --rotation=DEG --csv=<prefix>
#include <cstdio>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::MnistLike;
  exp.apply_flags(flags);
  const double rotation = flags.get_double("rotation", 45.0);
  const double target = flags.get_double("target", 0.85);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Fig. 10 — label + feature skew (mnist-like, rotation " +
          std::to_string(static_cast<int>(rotation)) + " deg)",
      std::to_string(exp.num_clients) +
          " clients, majority skew; majority-odd clients rotate all images",
      "P(X|y) fastest to target accuracy; P(y) and TiFL ~4% slower (P(y) "
      "clusters hide the rotation skew)");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed = data::partition_feature_skew(
      gen, exp.make_partition_config(), rotation, rng);

  const auto engine_config = exp.make_engine_config(fed);
  core::HaccsConfig haccs;
  haccs.rho = 0.5;

  const auto runs = bench::run_all_strategies(fed, engine_config, haccs);

  std::printf("\nTime-to-accuracy:\n");
  bench::print_tta_table(runs, {0.5, 0.7, target},
                         csv.empty() ? "" : csv + "_tta.csv");
  std::printf("\nAccuracy-vs-time curves (Fig. 10 series):\n");
  bench::print_curves(runs, csv.empty() ? "" : csv + "_curves.csv");
  return 0;
}
