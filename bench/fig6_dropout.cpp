// Fig. 6 — Performance with 10% per-epoch dropout on FEMNIST, 20 classes.
//
// Paper setup (§V-C): 10% of clients marked unavailable at the start of each
// epoch and recovered at its end, with seeded draws identical across all
// strategies; 75/12/7/6 label skew over 20 FEMNIST classes. Expectation:
// HACCS (clusters substitute the next-fastest same-distribution device for a
// dropped one) degrades least; Oort suffers most (a dropped high-utility
// client with a unique distribution causes accuracy oscillation).
//
// Flags: --rounds=N --seed=N --full --csv=<prefix>
#include <cstdio>

#include "bench/harness.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::FemnistLike;
  exp.classes = 20;  // paper: "20 classes of the FEMNIST dataset"
  exp.apply_flags(flags);
  const double fraction = flags.get_double("dropout", 0.10);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Fig. 6 — 10% per-epoch dropout (femnist-like, 20 classes)",
      std::to_string(exp.num_clients) + " clients, " +
          std::to_string(exp.clients_per_round) +
          "/round, majority skew 75/12/7/6, dropout " +
          std::to_string(fraction),
      "HACCS P(X|y) converges fastest, then TiFL and P(y), then Random; "
      "Oort oscillates and is slowest (paper: TiFL/P(y)/Random take "
      "18%/29%/60% extra time vs P(X|y) to 50%)");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);

  const auto engine_config = exp.make_engine_config(fed);
  core::HaccsConfig haccs;
  haccs.rho = 0.5;

  // Seeded schedule shared by every strategy, per the paper's methodology.
  const auto schedule = sim::make_per_epoch_dropout(exp.num_clients, fraction,
                                                    exp.seed + 101);
  const auto runs =
      bench::run_all_strategies(fed, engine_config, haccs, schedule.get());

  std::printf("\nTime-to-accuracy under dropout:\n");
  bench::print_tta_table(runs, {0.5, 0.7, 0.8},
                         csv.empty() ? "" : csv + "_tta.csv");
  std::printf("\nAccuracy-vs-time curves (Fig. 6 series):\n");
  bench::print_curves(runs, csv.empty() ? "" : csv + "_curves.csv");
  return 0;
}
