// Ablation — systems mechanisms orthogonal to client selection:
// synchronous vs asynchronous aggregation, and uplink update compression.
//
// Both attack the same straggler problem HACCS schedules around, from
// different angles: async removes the round barrier entirely (fast devices
// stream updates at their own pace, stale updates discounted), compression
// shrinks the slow devices' dominant cost (transfer at 1-25 Mbps). Each is
// run under Random and HACCS-P(y) selection on the Fig. 5 workload, so the
// table shows how the mechanisms compose with scheduling.
//
// Flags: --rounds=N --seed=N --csv=<path>
#include <cstdio>

#include "bench/harness.hpp"
#include "src/common/table.hpp"
#include "src/fl/async_engine.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::FemnistLike;
  exp.rounds = 180;
  exp.apply_flags(flags);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Ablation — aggregation mode and uplink compression (femnist-like)",
      "sync FedAvg vs async buffered aggregation; dense vs top-k/int8 uplinks",
      "async reaches targets in less simulated time than straggler-gated "
      "sync; compression helps most under sync Random (which keeps picking "
      "slow uplinks); both compose with HACCS");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);
  const auto base_engine = exp.make_engine_config(fed);

  Table table({"mechanism", "selector", "tta@50% (s)", "tta@80% (s)",
               "final_acc"});

  auto run_sync = [&](const std::string& label, const std::string& strategy,
                      fl::CompressionConfig compression) {
    std::fprintf(stderr, "  sync %s / %s...\n", label.c_str(),
                 strategy.c_str());
    auto engine = base_engine;
    engine.compression = compression;
    core::HaccsConfig haccs;
    haccs.rho = 0.5;
    const auto history =
        bench::run_strategy(strategy, fed, engine, haccs);
    table.add_row({label, strategy,
                   fl::format_tta(history.time_to_accuracy(0.5)),
                   fl::format_tta(history.time_to_accuracy(0.8)),
                   Table::num(history.final_accuracy(), 3)});
  };

  auto run_async = [&](const std::string& strategy) {
    std::fprintf(stderr, "  async / %s...\n", strategy.c_str());
    fl::AsyncEngineConfig async_cfg;
    async_cfg.aggregations = base_engine.rounds;
    async_cfg.max_in_flight = base_engine.clients_per_round;
    async_cfg.buffer_size = base_engine.clients_per_round / 2;
    async_cfg.local = base_engine.local;
    async_cfg.latency = base_engine.latency;
    async_cfg.eval_every = base_engine.eval_every;
    async_cfg.initial_loss = base_engine.initial_loss;
    async_cfg.seed = base_engine.seed;
    fl::AsyncFederatedTrainer trainer(
        fed, core::default_model_factory(fed, 99), async_cfg);
    std::unique_ptr<fl::ClientSelector> selector;
    if (strategy == "Random") {
      selector = std::make_unique<select::RandomSelector>();
    } else {
      core::HaccsConfig haccs;
      haccs.rho = 0.5;
      haccs.initial_loss = async_cfg.initial_loss;
      selector = std::make_unique<core::HaccsSelector>(fed, haccs);
    }
    const auto history = trainer.run(*selector);
    table.add_row({"async (buffer=" + std::to_string(async_cfg.buffer_size) +
                       ", staleness-weighted)",
                   strategy, fl::format_tta(history.time_to_accuracy(0.5)),
                   fl::format_tta(history.time_to_accuracy(0.8)),
                   Table::num(history.final_accuracy(), 3)});
  };

  fl::CompressionConfig dense;
  fl::CompressionConfig topk;
  topk.kind = fl::CompressionKind::TopK;
  topk.topk_fraction = 0.1;
  fl::CompressionConfig int8;
  int8.kind = fl::CompressionKind::Int8;

  for (const std::string strategy : {"Random", "HACCS-P(y)"}) {
    run_sync("sync, dense uplink", strategy, dense);
    run_sync("sync, top-k(10%) uplink", strategy, topk);
    run_sync("sync, int8 uplink", strategy, int8);
    run_async(strategy);
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
