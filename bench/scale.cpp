// Scaling benchmarks for the sketch → ANN-prune → shard → merge pipeline
// (DESIGN.md §5h). The committed baseline is BENCH_scale.json; regenerate
// with tools/bench.sh --scale-only and commit the diff alongside any change
// to src/scale. tools/bench.sh --check compares a fresh run against the
// baseline with a noise threshold.
//
// The workload is synthetic sketch rows around `kArchetypes` well-separated
// distribution archetypes — the regime HACCS targets (many clients, few
// distinct data distributions). Exact distances are sketch-space distances:
// the benchmarks isolate the *orchestration* cost (LSH, sharding, merge,
// incremental bookkeeping), which is what src/scale owns; summary-distance
// kernels are covered by the micro suite.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "src/clustering/dbscan.hpp"
#include "src/common/rng.hpp"
#include "src/common/threadpool.hpp"
#include "src/scale/incremental.hpp"
#include "src/scale/scale.hpp"

namespace haccs::scale {
namespace {

constexpr std::size_t kDim = 32;
constexpr std::size_t kArchetypes = 16;

std::vector<float> archetype_row(std::size_t archetype, double spread) {
  std::vector<float> row(kDim, 0.0f);
  row[archetype % kDim] = static_cast<float>(std::sqrt(1.0 - spread));
  row[(archetype + 1) % kDim] = static_cast<float>(std::sqrt(spread));
  return row;
}

SketchMatrix synthetic_sketches(std::size_t n, Rng& rng) {
  SketchMatrix m(kDim);
  m.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.append(archetype_row(i % kArchetypes, 0.02 * rng.uniform()));
  }
  return m;
}

ClusterFn bench_cluster_fn() {
  return [](const clustering::NeighborIndex& index) {
    return clustering::dbscan(index, {.eps = 0.25, .min_pts = 2});
  };
}

ScaleConfig bench_config() {
  ScaleConfig config;
  config.shard_size = 1024;
  config.exact_cutoff = 256;
  return config;
}

/// Full batch clustering at 10k / 100k / 1M clients.
void BM_ScaleClusterSharded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const auto sketches = synthetic_sketches(n, rng);
  const auto exact = [&sketches](std::size_t i, std::size_t j) {
    return sketch_distance(sketches, i, j);
  };
  const auto cluster = bench_cluster_fn();
  const auto config = bench_config();
  for (auto _ : state) {
    ScaleStats stats;
    auto labels = cluster_sharded(sketches, exact, cluster, config, &stats);
    benchmark::DoNotOptimize(labels.data());
    state.counters["exact_distances"] =
        static_cast<double>(stats.exact_distances);
    state.counters["candidate_pairs"] =
        static_cast<double>(stats.candidate_pairs);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScaleClusterSharded)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);
// 1M gets a single timed iteration: one pass is seconds, and the acceptance
// criterion is "completes with bounded memory", not per-iteration variance.
BENCHMARK(BM_ScaleClusterSharded)
    ->Arg(1'000'000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Shard fan-out thread sweep: the same 100k-client batch clustering on an
/// explicitly sized pool (1/2/4/8 workers through cluster_sharded's pool
/// seam). Labels are width-invariant (shards are independent); the sweep
/// measures how far the per-shard parallel_for actually scales on the host
/// — on a single-core machine all four entries should be flat, which is
/// itself the signal (no phantom speedup from oversubscription).
void BM_ScaleClusterShardedThreads(benchmark::State& state) {
  constexpr std::size_t kClients = 100'000;
  const auto threads = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const auto sketches = synthetic_sketches(kClients, rng);
  const auto exact = [&sketches](std::size_t i, std::size_t j) {
    return sketch_distance(sketches, i, j);
  };
  const auto cluster = bench_cluster_fn();
  const auto config = bench_config();
  // "1 thread" = 1 pool worker; ThreadPool(0) would run inline on the
  // calling thread, which is the same serial schedule with less queueing.
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto labels =
        cluster_sharded(sketches, exact, cluster, config, nullptr, &pool);
    benchmark::DoNotOptimize(labels.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(state.iterations() * kClients);
}
BENCHMARK(BM_ScaleClusterShardedThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Incremental re-selection at an established population: one selection
/// round's worth of churn (tens of leave/join/update events — FL rounds see
/// dozens of device transitions, not thousands) followed by the dirty-shard
/// recompute + merge. Only shards touched by churn re-cluster; the rest
/// reuse cached results. The 100k-client entry is the PR's headline
/// criterion (< 1s per cycle, vs ~1.5s for a from-scratch rebuild).
void BM_ScaleIncrementalRecluster(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t churn = 16;
  Rng rng(11);
  auto config = bench_config();
  config.dirty_threshold = 0.0;  // every cycle recomputes (worst case)
  IncrementalClusterer* handle = nullptr;
  const auto exact = [&handle](std::size_t i, std::size_t j) {
    return sketch_distance(handle->sketches(), i, j);
  };
  IncrementalClusterer inc(kDim, exact, bench_cluster_fn(), config);
  handle = &inc;
  for (std::size_t i = 0; i < n; ++i) {
    inc.add_client(archetype_row(i % kArchetypes, 0.02 * rng.uniform()));
  }
  inc.rebuild();

  for (auto _ : state) {
    for (std::size_t i = 0; i < churn; ++i) {
      const auto victim = rng.uniform_index(n);
      if (inc.alive(victim)) inc.remove_client(victim);
    }
    while (inc.size() < n) {
      inc.add_client(archetype_row(rng.uniform_index(kArchetypes),
                                   0.02 * rng.uniform()));
    }
    for (std::size_t i = 0; i < churn; ++i) {
      const auto victim = rng.uniform_index(n);
      if (inc.alive(victim)) {
        inc.update_client(victim, archetype_row(rng.uniform_index(kArchetypes),
                                                0.02 * rng.uniform()));
      }
    }
    benchmark::DoNotOptimize(inc.recompute_if_dirty());
  }
  state.counters["shards"] = static_cast<double>(inc.shard_count());
  state.SetItemsProcessed(state.iterations() * churn * 3);
}
BENCHMARK(BM_ScaleIncrementalRecluster)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleIncrementalRecluster)
    ->Arg(1'000'000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace haccs::scale

BENCHMARK_MAIN();
