// Fig. 3 — Example DP-noised label histograms.
//
// A client with 1000 training points for each of 10 labels publishes its
// P(y) histogram under the Laplace mechanism at eps = 0.1 and eps = 0.005.
// The paper's point: at eps = 0.1 the uniform shape survives; at eps = 0.005
// the noise (Var = 2/eps^2 = 80,000) buries it.
//
// Flags: --seed=N --csv=<path>
#include <cmath>
#include <cstdio>

#include "src/common/flags.hpp"
#include "src/common/table.hpp"
#include "src/stats/privacy.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  std::printf("==============================================================\n");
  std::printf("Fig. 3 — Laplace-mechanism label histograms\n");
  std::printf("workload: 1000 points per label x 10 labels, eps in {0.1, 0.005}\n");
  std::printf("paper expectation: eps=0.1 keeps the histogram recognizable; "
              "eps=0.005 buries it in noise (Var[lambda] = 2/eps^2, Eq. 5)\n");
  std::printf("==============================================================\n");

  stats::Histogram truth(10);
  for (std::size_t bin = 0; bin < 10; ++bin) truth.add_count(bin, 1000.0);

  Rng rng_a(seed), rng_b(seed);
  stats::Histogram strong = truth;
  stats::privatize_histogram(strong, 0.1, rng_a);
  stats::Histogram weak = truth;
  stats::privatize_histogram(weak, 0.005, rng_b);

  Table table({"label", "true_count", "noised_eps_0.1", "noised_eps_0.005"});
  for (std::size_t bin = 0; bin < 10; ++bin) {
    table.add_row({std::to_string(bin), Table::num(truth.counts()[bin], 0),
                   Table::num(strong.counts()[bin], 1),
                   Table::num(weak.counts()[bin], 1)});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);

  // Hellinger distortion relative to the true histogram — the quantity that
  // actually drives clustering quality downstream.
  std::printf("\nHellinger distance to true histogram: eps=0.1 -> %.4f, "
              "eps=0.005 -> %.4f\n",
              stats::hellinger_distance(truth, strong),
              stats::hellinger_distance(truth, weak));
  std::printf("theoretical noise stddev: eps=0.1 -> %.1f, eps=0.005 -> %.1f\n",
              std::sqrt(stats::laplace_noise_variance(0.1)),
              std::sqrt(stats::laplace_noise_variance(0.005)));
  return 0;
}
