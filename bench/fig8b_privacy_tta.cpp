// Fig. 8b — Effect of the privacy loss epsilon on training time (CIFAR-like).
//
// Paper setup (§V-D2): HACCS P(y) trained with DP-noised summaries at
// eps in {0.1, 0.01, 0.001}, compared against the Random scheduler.
// Expectation: eps = 0.1 cuts TTA ~34% vs Random, eps = 0.01 ~23%,
// eps = 0.001 ~16% — weaker privacy budgets erode the clustering advantage
// but HACCS stays ahead of Random.
//
// Flags: --rounds=N --seed=N --full --csv=<path>
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/harness.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace haccs;
  const Flags flags(argc, argv);
  bench::ExperimentConfig exp;
  exp.dataset = bench::DatasetKind::CifarLike;
  exp.rounds = 180;
  exp.apply_flags(flags);
  const double target = flags.get_double("target", 0.5);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  bench::print_header(
      "Fig. 8b — epsilon vs TTA (HACCS P(y), cifar-like)",
      std::to_string(exp.num_clients) + " clients, majority skew, eps in "
      "{none, 0.1, 0.01, 0.001} vs Random",
      "TTA reduction over Random shrinks as eps tightens (paper: 34% at "
      "eps=0.1, 23% at 0.01, 16% at 0.001)");

  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  const auto fed =
      data::partition_majority_label(gen, exp.make_partition_config(), rng);
  const auto engine_config = exp.make_engine_config(fed);

  std::fprintf(stderr, "  running Random baseline...\n");
  core::HaccsConfig haccs;
  haccs.rho = 0.5;
  const auto random_history =
      bench::run_strategy("Random", fed, engine_config, haccs);
  const double random_tta = random_history.time_to_accuracy(target);

  Table table({"epsilon", "tta@" + Table::num(100 * target, 0) + "% (s)",
               "reduction_vs_random", "final_acc"});
  table.add_row({"Random (baseline)", fl::format_tta(random_tta), "-",
                 Table::num(random_history.final_accuracy(), 3)});

  const std::vector<double> epsilons = {
      std::numeric_limits<double>::infinity(), 0.1, 0.01, 0.001};
  for (double eps : epsilons) {
    core::HaccsConfig cfg;
    cfg.rho = 0.5;
    cfg.privacy = stats::PrivacyConfig{eps};
    cfg.privacy_seed = exp.seed + 31;
    const std::string label =
        std::isfinite(eps) ? Table::num(eps, 3) : "none (no noise)";
    std::fprintf(stderr, "  running HACCS-P(y) eps=%s...\n", label.c_str());
    const auto history =
        bench::run_strategy("HACCS-P(y)", fed, engine_config, cfg);
    const double tta = history.time_to_accuracy(target);
    std::string reduction = "-";
    if (std::isfinite(random_tta) && std::isfinite(tta)) {
      reduction = Table::num(100.0 * (1.0 - tta / random_tta), 1) + "%";
    }
    table.add_row({label, fl::format_tta(tta), reduction,
                   Table::num(history.final_accuracy(), 3)});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
