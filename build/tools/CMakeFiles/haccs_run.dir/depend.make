# Empty dependencies file for haccs_run.
# This may be replaced when dependencies are built.
