# Empty compiler generated dependencies file for haccs_run.
# This may be replaced when dependencies are built.
