file(REMOVE_RECURSE
  "CMakeFiles/haccs_run.dir/haccs_run.cpp.o"
  "CMakeFiles/haccs_run.dir/haccs_run.cpp.o.d"
  "haccs_run"
  "haccs_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
