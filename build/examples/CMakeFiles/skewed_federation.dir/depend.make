# Empty dependencies file for skewed_federation.
# This may be replaced when dependencies are built.
