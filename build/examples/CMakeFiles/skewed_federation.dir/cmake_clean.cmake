file(REMOVE_RECURSE
  "CMakeFiles/skewed_federation.dir/skewed_federation.cpp.o"
  "CMakeFiles/skewed_federation.dir/skewed_federation.cpp.o.d"
  "skewed_federation"
  "skewed_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
