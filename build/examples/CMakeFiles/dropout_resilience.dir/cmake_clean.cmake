file(REMOVE_RECURSE
  "CMakeFiles/dropout_resilience.dir/dropout_resilience.cpp.o"
  "CMakeFiles/dropout_resilience.dir/dropout_resilience.cpp.o.d"
  "dropout_resilience"
  "dropout_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropout_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
