# Empty compiler generated dependencies file for dropout_resilience.
# This may be replaced when dependencies are built.
