file(REMOVE_RECURSE
  "libhaccs_bench_harness.a"
)
