file(REMOVE_RECURSE
  "CMakeFiles/haccs_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/haccs_bench_harness.dir/harness.cpp.o.d"
  "libhaccs_bench_harness.a"
  "libhaccs_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
