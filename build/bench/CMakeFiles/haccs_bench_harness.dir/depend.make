# Empty dependencies file for haccs_bench_harness.
# This may be replaced when dependencies are built.
