# Empty dependencies file for fig6_dropout.
# This may be replaced when dependencies are built.
