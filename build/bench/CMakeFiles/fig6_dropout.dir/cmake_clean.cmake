file(REMOVE_RECURSE
  "CMakeFiles/fig6_dropout.dir/fig6_dropout.cpp.o"
  "CMakeFiles/fig6_dropout.dir/fig6_dropout.cpp.o.d"
  "fig6_dropout"
  "fig6_dropout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dropout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
