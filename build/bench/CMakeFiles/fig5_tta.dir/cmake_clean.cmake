file(REMOVE_RECURSE
  "CMakeFiles/fig5_tta.dir/fig5_tta.cpp.o"
  "CMakeFiles/fig5_tta.dir/fig5_tta.cpp.o.d"
  "fig5_tta"
  "fig5_tta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
