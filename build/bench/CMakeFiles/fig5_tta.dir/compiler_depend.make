# Empty compiler generated dependencies file for fig5_tta.
# This may be replaced when dependencies are built.
