# Empty compiler generated dependencies file for fig3_privacy_histograms.
# This may be replaced when dependencies are built.
