file(REMOVE_RECURSE
  "CMakeFiles/fig3_privacy_histograms.dir/fig3_privacy_histograms.cpp.o"
  "CMakeFiles/fig3_privacy_histograms.dir/fig3_privacy_histograms.cpp.o.d"
  "fig3_privacy_histograms"
  "fig3_privacy_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_privacy_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
