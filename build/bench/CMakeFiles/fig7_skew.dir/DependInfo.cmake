
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_skew.cpp" "bench/CMakeFiles/fig7_skew.dir/fig7_skew.cpp.o" "gcc" "bench/CMakeFiles/fig7_skew.dir/fig7_skew.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/haccs_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/haccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/haccs_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/haccs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/select/CMakeFiles/haccs_select.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/haccs_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/haccs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/haccs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/haccs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/haccs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/haccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
