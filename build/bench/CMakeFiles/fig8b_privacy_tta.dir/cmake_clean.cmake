file(REMOVE_RECURSE
  "CMakeFiles/fig8b_privacy_tta.dir/fig8b_privacy_tta.cpp.o"
  "CMakeFiles/fig8b_privacy_tta.dir/fig8b_privacy_tta.cpp.o.d"
  "fig8b_privacy_tta"
  "fig8b_privacy_tta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_privacy_tta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
