# Empty compiler generated dependencies file for fig8b_privacy_tta.
# This may be replaced when dependencies are built.
