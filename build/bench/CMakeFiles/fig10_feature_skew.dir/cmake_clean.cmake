file(REMOVE_RECURSE
  "CMakeFiles/fig10_feature_skew.dir/fig10_feature_skew.cpp.o"
  "CMakeFiles/fig10_feature_skew.dir/fig10_feature_skew.cpp.o.d"
  "fig10_feature_skew"
  "fig10_feature_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_feature_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
