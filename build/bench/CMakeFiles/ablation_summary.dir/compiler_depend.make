# Empty compiler generated dependencies file for ablation_summary.
# This may be replaced when dependencies are built.
