file(REMOVE_RECURSE
  "CMakeFiles/ablation_summary.dir/ablation_summary.cpp.o"
  "CMakeFiles/ablation_summary.dir/ablation_summary.cpp.o.d"
  "ablation_summary"
  "ablation_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
