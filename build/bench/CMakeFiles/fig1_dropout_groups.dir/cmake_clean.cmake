file(REMOVE_RECURSE
  "CMakeFiles/fig1_dropout_groups.dir/fig1_dropout_groups.cpp.o"
  "CMakeFiles/fig1_dropout_groups.dir/fig1_dropout_groups.cpp.o.d"
  "fig1_dropout_groups"
  "fig1_dropout_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dropout_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
