# Empty compiler generated dependencies file for fig1_dropout_groups.
# This may be replaced when dependencies are built.
