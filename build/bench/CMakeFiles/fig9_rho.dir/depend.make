# Empty dependencies file for fig9_rho.
# This may be replaced when dependencies are built.
