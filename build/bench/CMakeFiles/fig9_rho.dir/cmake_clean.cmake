file(REMOVE_RECURSE
  "CMakeFiles/fig9_rho.dir/fig9_rho.cpp.o"
  "CMakeFiles/fig9_rho.dir/fig9_rho.cpp.o.d"
  "fig9_rho"
  "fig9_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
