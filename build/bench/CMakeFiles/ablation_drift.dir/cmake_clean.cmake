file(REMOVE_RECURSE
  "CMakeFiles/ablation_drift.dir/ablation_drift.cpp.o"
  "CMakeFiles/ablation_drift.dir/ablation_drift.cpp.o.d"
  "ablation_drift"
  "ablation_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
