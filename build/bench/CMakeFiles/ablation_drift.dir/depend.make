# Empty dependencies file for ablation_drift.
# This may be replaced when dependencies are built.
