file(REMOVE_RECURSE
  "CMakeFiles/fig11_bias.dir/fig11_bias.cpp.o"
  "CMakeFiles/fig11_bias.dir/fig11_bias.cpp.o.d"
  "fig11_bias"
  "fig11_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
