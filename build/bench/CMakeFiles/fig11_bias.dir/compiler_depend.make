# Empty compiler generated dependencies file for fig11_bias.
# This may be replaced when dependencies are built.
