file(REMOVE_RECURSE
  "CMakeFiles/fig8a_privacy_clustering.dir/fig8a_privacy_clustering.cpp.o"
  "CMakeFiles/fig8a_privacy_clustering.dir/fig8a_privacy_clustering.cpp.o.d"
  "fig8a_privacy_clustering"
  "fig8a_privacy_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_privacy_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
