# Empty compiler generated dependencies file for fig8a_privacy_clustering.
# This may be replaced when dependencies are built.
