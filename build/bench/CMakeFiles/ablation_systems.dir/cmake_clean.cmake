file(REMOVE_RECURSE
  "CMakeFiles/ablation_systems.dir/ablation_systems.cpp.o"
  "CMakeFiles/ablation_systems.dir/ablation_systems.cpp.o.d"
  "ablation_systems"
  "ablation_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
