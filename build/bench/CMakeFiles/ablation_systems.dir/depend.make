# Empty dependencies file for ablation_systems.
# This may be replaced when dependencies are built.
