
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/async_test.cpp" "tests/CMakeFiles/haccs_tests.dir/async_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/async_test.cpp.o.d"
  "/root/repo/tests/clustering_test.cpp" "tests/CMakeFiles/haccs_tests.dir/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/clustering_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/haccs_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/compression_test.cpp" "tests/CMakeFiles/haccs_tests.dir/compression_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/compression_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/haccs_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/haccs_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/haccs_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fl_test.cpp" "tests/CMakeFiles/haccs_tests.dir/fl_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/fl_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/haccs_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/nn_test.cpp" "tests/CMakeFiles/haccs_tests.dir/nn_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/nn_test.cpp.o.d"
  "/root/repo/tests/property2_test.cpp" "tests/CMakeFiles/haccs_tests.dir/property2_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/property2_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/haccs_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/select_test.cpp" "tests/CMakeFiles/haccs_tests.dir/select_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/select_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/haccs_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/haccs_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/summary_ext_test.cpp" "tests/CMakeFiles/haccs_tests.dir/summary_ext_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/summary_ext_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/haccs_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/tools_test.cpp" "tests/CMakeFiles/haccs_tests.dir/tools_test.cpp.o" "gcc" "tests/CMakeFiles/haccs_tests.dir/tools_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/haccs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/select/CMakeFiles/haccs_select.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/haccs_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/haccs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/haccs_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/haccs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/haccs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/haccs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/haccs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/haccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
