# Empty compiler generated dependencies file for haccs_tests.
# This may be replaced when dependencies are built.
