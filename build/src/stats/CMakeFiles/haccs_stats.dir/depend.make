# Empty dependencies file for haccs_stats.
# This may be replaced when dependencies are built.
