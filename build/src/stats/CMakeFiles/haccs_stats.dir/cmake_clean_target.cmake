file(REMOVE_RECURSE
  "libhaccs_stats.a"
)
