
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/distance.cpp" "src/stats/CMakeFiles/haccs_stats.dir/distance.cpp.o" "gcc" "src/stats/CMakeFiles/haccs_stats.dir/distance.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/haccs_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/haccs_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/stats/CMakeFiles/haccs_stats.dir/metrics.cpp.o" "gcc" "src/stats/CMakeFiles/haccs_stats.dir/metrics.cpp.o.d"
  "/root/repo/src/stats/privacy.cpp" "src/stats/CMakeFiles/haccs_stats.dir/privacy.cpp.o" "gcc" "src/stats/CMakeFiles/haccs_stats.dir/privacy.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/haccs_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/haccs_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/haccs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/haccs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/haccs_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
