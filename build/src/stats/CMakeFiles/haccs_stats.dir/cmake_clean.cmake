file(REMOVE_RECURSE
  "CMakeFiles/haccs_stats.dir/distance.cpp.o"
  "CMakeFiles/haccs_stats.dir/distance.cpp.o.d"
  "CMakeFiles/haccs_stats.dir/histogram.cpp.o"
  "CMakeFiles/haccs_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/haccs_stats.dir/metrics.cpp.o"
  "CMakeFiles/haccs_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/haccs_stats.dir/privacy.cpp.o"
  "CMakeFiles/haccs_stats.dir/privacy.cpp.o.d"
  "CMakeFiles/haccs_stats.dir/summary.cpp.o"
  "CMakeFiles/haccs_stats.dir/summary.cpp.o.d"
  "libhaccs_stats.a"
  "libhaccs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
