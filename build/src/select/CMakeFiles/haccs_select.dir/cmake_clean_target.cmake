file(REMOVE_RECURSE
  "libhaccs_select.a"
)
