# Empty dependencies file for haccs_select.
# This may be replaced when dependencies are built.
