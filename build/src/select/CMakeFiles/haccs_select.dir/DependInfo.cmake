
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/select/oort.cpp" "src/select/CMakeFiles/haccs_select.dir/oort.cpp.o" "gcc" "src/select/CMakeFiles/haccs_select.dir/oort.cpp.o.d"
  "/root/repo/src/select/random_selector.cpp" "src/select/CMakeFiles/haccs_select.dir/random_selector.cpp.o" "gcc" "src/select/CMakeFiles/haccs_select.dir/random_selector.cpp.o.d"
  "/root/repo/src/select/tifl.cpp" "src/select/CMakeFiles/haccs_select.dir/tifl.cpp.o" "gcc" "src/select/CMakeFiles/haccs_select.dir/tifl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/haccs_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/haccs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/haccs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/haccs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/haccs_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/haccs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
