file(REMOVE_RECURSE
  "CMakeFiles/haccs_select.dir/oort.cpp.o"
  "CMakeFiles/haccs_select.dir/oort.cpp.o.d"
  "CMakeFiles/haccs_select.dir/random_selector.cpp.o"
  "CMakeFiles/haccs_select.dir/random_selector.cpp.o.d"
  "CMakeFiles/haccs_select.dir/tifl.cpp.o"
  "CMakeFiles/haccs_select.dir/tifl.cpp.o.d"
  "libhaccs_select.a"
  "libhaccs_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
