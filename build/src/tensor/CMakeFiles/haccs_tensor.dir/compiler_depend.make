# Empty compiler generated dependencies file for haccs_tensor.
# This may be replaced when dependencies are built.
