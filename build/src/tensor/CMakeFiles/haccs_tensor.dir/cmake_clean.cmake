file(REMOVE_RECURSE
  "CMakeFiles/haccs_tensor.dir/ops.cpp.o"
  "CMakeFiles/haccs_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/haccs_tensor.dir/tensor.cpp.o"
  "CMakeFiles/haccs_tensor.dir/tensor.cpp.o.d"
  "libhaccs_tensor.a"
  "libhaccs_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
