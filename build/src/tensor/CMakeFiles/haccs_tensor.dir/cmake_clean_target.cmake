file(REMOVE_RECURSE
  "libhaccs_tensor.a"
)
