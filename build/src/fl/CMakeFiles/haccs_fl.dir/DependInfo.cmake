
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/async_engine.cpp" "src/fl/CMakeFiles/haccs_fl.dir/async_engine.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/async_engine.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/haccs_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/compression.cpp" "src/fl/CMakeFiles/haccs_fl.dir/compression.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/compression.cpp.o.d"
  "/root/repo/src/fl/engine.cpp" "src/fl/CMakeFiles/haccs_fl.dir/engine.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/engine.cpp.o.d"
  "/root/repo/src/fl/evaluation.cpp" "src/fl/CMakeFiles/haccs_fl.dir/evaluation.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/evaluation.cpp.o.d"
  "/root/repo/src/fl/fedprox.cpp" "src/fl/CMakeFiles/haccs_fl.dir/fedprox.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/fedprox.cpp.o.d"
  "/root/repo/src/fl/history.cpp" "src/fl/CMakeFiles/haccs_fl.dir/history.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/history.cpp.o.d"
  "/root/repo/src/fl/selector.cpp" "src/fl/CMakeFiles/haccs_fl.dir/selector.cpp.o" "gcc" "src/fl/CMakeFiles/haccs_fl.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/haccs_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/haccs_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/haccs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/haccs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/haccs_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
