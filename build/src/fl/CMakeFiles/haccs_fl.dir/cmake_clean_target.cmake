file(REMOVE_RECURSE
  "libhaccs_fl.a"
)
