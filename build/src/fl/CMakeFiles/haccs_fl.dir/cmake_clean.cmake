file(REMOVE_RECURSE
  "CMakeFiles/haccs_fl.dir/async_engine.cpp.o"
  "CMakeFiles/haccs_fl.dir/async_engine.cpp.o.d"
  "CMakeFiles/haccs_fl.dir/client.cpp.o"
  "CMakeFiles/haccs_fl.dir/client.cpp.o.d"
  "CMakeFiles/haccs_fl.dir/compression.cpp.o"
  "CMakeFiles/haccs_fl.dir/compression.cpp.o.d"
  "CMakeFiles/haccs_fl.dir/engine.cpp.o"
  "CMakeFiles/haccs_fl.dir/engine.cpp.o.d"
  "CMakeFiles/haccs_fl.dir/evaluation.cpp.o"
  "CMakeFiles/haccs_fl.dir/evaluation.cpp.o.d"
  "CMakeFiles/haccs_fl.dir/fedprox.cpp.o"
  "CMakeFiles/haccs_fl.dir/fedprox.cpp.o.d"
  "CMakeFiles/haccs_fl.dir/history.cpp.o"
  "CMakeFiles/haccs_fl.dir/history.cpp.o.d"
  "CMakeFiles/haccs_fl.dir/selector.cpp.o"
  "CMakeFiles/haccs_fl.dir/selector.cpp.o.d"
  "libhaccs_fl.a"
  "libhaccs_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
