# Empty compiler generated dependencies file for haccs_fl.
# This may be replaced when dependencies are built.
