# Empty compiler generated dependencies file for haccs_data.
# This may be replaced when dependencies are built.
