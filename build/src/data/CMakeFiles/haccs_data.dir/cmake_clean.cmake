file(REMOVE_RECURSE
  "CMakeFiles/haccs_data.dir/dataset.cpp.o"
  "CMakeFiles/haccs_data.dir/dataset.cpp.o.d"
  "CMakeFiles/haccs_data.dir/partition.cpp.o"
  "CMakeFiles/haccs_data.dir/partition.cpp.o.d"
  "CMakeFiles/haccs_data.dir/synthetic.cpp.o"
  "CMakeFiles/haccs_data.dir/synthetic.cpp.o.d"
  "libhaccs_data.a"
  "libhaccs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
