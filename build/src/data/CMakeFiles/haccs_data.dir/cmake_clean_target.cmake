file(REMOVE_RECURSE
  "libhaccs_data.a"
)
