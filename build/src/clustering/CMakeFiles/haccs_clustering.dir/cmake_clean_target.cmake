file(REMOVE_RECURSE
  "libhaccs_clustering.a"
)
