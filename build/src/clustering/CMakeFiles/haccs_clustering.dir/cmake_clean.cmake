file(REMOVE_RECURSE
  "CMakeFiles/haccs_clustering.dir/dbscan.cpp.o"
  "CMakeFiles/haccs_clustering.dir/dbscan.cpp.o.d"
  "CMakeFiles/haccs_clustering.dir/distance_matrix.cpp.o"
  "CMakeFiles/haccs_clustering.dir/distance_matrix.cpp.o.d"
  "CMakeFiles/haccs_clustering.dir/optics.cpp.o"
  "CMakeFiles/haccs_clustering.dir/optics.cpp.o.d"
  "libhaccs_clustering.a"
  "libhaccs_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
