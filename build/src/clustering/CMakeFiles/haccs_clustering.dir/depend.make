# Empty dependencies file for haccs_clustering.
# This may be replaced when dependencies are built.
