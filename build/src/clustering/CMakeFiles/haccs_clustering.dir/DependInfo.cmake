
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/dbscan.cpp" "src/clustering/CMakeFiles/haccs_clustering.dir/dbscan.cpp.o" "gcc" "src/clustering/CMakeFiles/haccs_clustering.dir/dbscan.cpp.o.d"
  "/root/repo/src/clustering/distance_matrix.cpp" "src/clustering/CMakeFiles/haccs_clustering.dir/distance_matrix.cpp.o" "gcc" "src/clustering/CMakeFiles/haccs_clustering.dir/distance_matrix.cpp.o.d"
  "/root/repo/src/clustering/optics.cpp" "src/clustering/CMakeFiles/haccs_clustering.dir/optics.cpp.o" "gcc" "src/clustering/CMakeFiles/haccs_clustering.dir/optics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/haccs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
