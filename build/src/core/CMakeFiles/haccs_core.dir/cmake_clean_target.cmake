file(REMOVE_RECURSE
  "libhaccs_core.a"
)
