# Empty compiler generated dependencies file for haccs_core.
# This may be replaced when dependencies are built.
