file(REMOVE_RECURSE
  "CMakeFiles/haccs_core.dir/gradient_selector.cpp.o"
  "CMakeFiles/haccs_core.dir/gradient_selector.cpp.o.d"
  "CMakeFiles/haccs_core.dir/haccs_selector.cpp.o"
  "CMakeFiles/haccs_core.dir/haccs_selector.cpp.o.d"
  "CMakeFiles/haccs_core.dir/haccs_system.cpp.o"
  "CMakeFiles/haccs_core.dir/haccs_system.cpp.o.d"
  "CMakeFiles/haccs_core.dir/pipeline.cpp.o"
  "CMakeFiles/haccs_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/haccs_core.dir/stratified_selector.cpp.o"
  "CMakeFiles/haccs_core.dir/stratified_selector.cpp.o.d"
  "libhaccs_core.a"
  "libhaccs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
