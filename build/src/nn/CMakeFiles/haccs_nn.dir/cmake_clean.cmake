file(REMOVE_RECURSE
  "CMakeFiles/haccs_nn.dir/layer.cpp.o"
  "CMakeFiles/haccs_nn.dir/layer.cpp.o.d"
  "CMakeFiles/haccs_nn.dir/loss.cpp.o"
  "CMakeFiles/haccs_nn.dir/loss.cpp.o.d"
  "CMakeFiles/haccs_nn.dir/model.cpp.o"
  "CMakeFiles/haccs_nn.dir/model.cpp.o.d"
  "CMakeFiles/haccs_nn.dir/optimizer.cpp.o"
  "CMakeFiles/haccs_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/haccs_nn.dir/serialize.cpp.o"
  "CMakeFiles/haccs_nn.dir/serialize.cpp.o.d"
  "libhaccs_nn.a"
  "libhaccs_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
