file(REMOVE_RECURSE
  "libhaccs_nn.a"
)
