# Empty compiler generated dependencies file for haccs_nn.
# This may be replaced when dependencies are built.
