# Empty compiler generated dependencies file for haccs_common.
# This may be replaced when dependencies are built.
