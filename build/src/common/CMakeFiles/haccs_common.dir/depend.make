# Empty dependencies file for haccs_common.
# This may be replaced when dependencies are built.
