file(REMOVE_RECURSE
  "libhaccs_common.a"
)
