file(REMOVE_RECURSE
  "CMakeFiles/haccs_common.dir/flags.cpp.o"
  "CMakeFiles/haccs_common.dir/flags.cpp.o.d"
  "CMakeFiles/haccs_common.dir/logging.cpp.o"
  "CMakeFiles/haccs_common.dir/logging.cpp.o.d"
  "CMakeFiles/haccs_common.dir/rng.cpp.o"
  "CMakeFiles/haccs_common.dir/rng.cpp.o.d"
  "CMakeFiles/haccs_common.dir/table.cpp.o"
  "CMakeFiles/haccs_common.dir/table.cpp.o.d"
  "CMakeFiles/haccs_common.dir/threadpool.cpp.o"
  "CMakeFiles/haccs_common.dir/threadpool.cpp.o.d"
  "libhaccs_common.a"
  "libhaccs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
