# Empty dependencies file for haccs_sim.
# This may be replaced when dependencies are built.
