file(REMOVE_RECURSE
  "libhaccs_sim.a"
)
