file(REMOVE_RECURSE
  "CMakeFiles/haccs_sim.dir/dropout.cpp.o"
  "CMakeFiles/haccs_sim.dir/dropout.cpp.o.d"
  "CMakeFiles/haccs_sim.dir/latency.cpp.o"
  "CMakeFiles/haccs_sim.dir/latency.cpp.o.d"
  "CMakeFiles/haccs_sim.dir/profile.cpp.o"
  "CMakeFiles/haccs_sim.dir/profile.cpp.o.d"
  "libhaccs_sim.a"
  "libhaccs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
