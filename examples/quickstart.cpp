// Quickstart: train a federated model with HACCS scheduling in ~30 lines.
//
// Builds a small federation with skewed labels, lets HACCS cluster the
// clients from their privacy-preserving P(y) summaries, trains with
// cluster-aware selection, and prints the time-to-accuracy.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "src/core/haccs_system.hpp"

int main() {
  using namespace haccs;

  // 1. A synthetic federated dataset: 20 clients, 10 classes, each client
  //    dominated by one label (75%) plus three noise labels — the paper's
  //    main data layout.
  data::SyntheticImageConfig image_config =
      data::SyntheticImageConfig::femnist_like(10);
  image_config.height = 16;
  image_config.width = 16;
  data::SyntheticImageGenerator generator(image_config);

  data::PartitionConfig partition;
  partition.num_clients = 20;
  partition.min_samples = 80;
  partition.max_samples = 160;
  partition.test_samples = 25;
  Rng rng(42);
  const auto federation =
      data::partition_majority_label(generator, partition, rng);

  // 2. HACCS configuration: P(y) summaries, OPTICS clustering, rho = 0.5.
  core::HaccsConfig haccs;
  haccs.summary = stats::SummaryKind::Response;
  haccs.rho = 0.5;

  // 3. Engine configuration: 80 rounds, 5 clients per round, simulated
  //    heterogeneous devices (paper Table II).
  fl::EngineConfig engine;
  engine.rounds = 80;
  engine.clients_per_round = 5;
  engine.eval_every = 5;
  engine.local.sgd.learning_rate = 0.08;
  engine.seed = 7;

  // 4. Train.
  core::HaccsSystem system(federation, haccs, engine,
                           core::default_model_factory(federation, 99));
  const auto history = system.train();

  // 5. Inspect.
  const auto clusters = system.cluster_labels();
  std::printf("clients: %zu\n", federation.num_clients());
  std::printf("final accuracy: %.3f\n", history.final_accuracy());
  std::printf("time to 70%% accuracy: %s simulated seconds\n",
              fl::format_tta(history.time_to_accuracy(0.7)).c_str());
  std::printf("cluster of each client:");
  for (int c : clusters) std::printf(" %d", c);
  std::printf("\n");
  return 0;
}
