// Scenario: surviving flaky devices.
//
// The paper's robustness claim (§III, §V-C): HACCS keeps every data
// distribution represented as long as *some* device with a similar
// distribution is reachable — when the fastest device in a cluster drops,
// the next-fastest stands in. We build a federation where each distribution
// group has several devices, hit it with heavy per-epoch dropout, and
// compare HACCS with Oort (which tracks individual devices and suffers when
// a high-utility one vanishes).
//
// Run: ./build/examples/dropout_resilience
#include <cstdio>

#include "src/core/haccs_system.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"

int main() {
  using namespace haccs;

  data::SyntheticImageConfig image_config =
      data::SyntheticImageConfig::femnist_like(10);
  image_config.height = 16;
  image_config.width = 16;
  data::SyntheticImageGenerator generator(image_config);

  data::PartitionConfig partition;
  partition.num_clients = 30;
  partition.min_samples = 80;
  partition.max_samples = 160;
  partition.test_samples = 25;
  Rng rng(17);
  const auto federation =
      data::partition_majority_label(generator, partition, rng);

  fl::EngineConfig engine;
  engine.rounds = 120;
  engine.clients_per_round = 6;
  engine.eval_every = 5;
  engine.local.sgd.learning_rate = 0.08;
  engine.seed = 29;

  core::HaccsConfig haccs;
  haccs.rho = 0.5;
  core::HaccsSystem system(federation, haccs, engine,
                           core::default_model_factory(federation, 99));

  std::printf("30 clients, 10 distribution groups, 6 selected per round\n");
  std::printf("dropout: 30%% of devices unavailable each epoch (recover "
              "next epoch), same draws for every strategy\n\n");

  const auto schedule =
      sim::make_per_epoch_dropout(federation.num_clients(), 0.30, 1234);

  const auto haccs_history = system.train(*schedule);
  select::OortSelector oort({});
  const auto oort_history = system.train_with(oort, *schedule);
  select::RandomSelector random;
  const auto random_history = system.train_with(random, *schedule);

  std::printf("time to 70%% accuracy under 30%% dropout:\n");
  std::printf("  HACCS-P(y): %s s\n",
              fl::format_tta(haccs_history.time_to_accuracy(0.7)).c_str());
  std::printf("  Oort:       %s s\n",
              fl::format_tta(oort_history.time_to_accuracy(0.7)).c_str());
  std::printf("  Random:     %s s\n",
              fl::format_tta(random_history.time_to_accuracy(0.7)).c_str());

  std::printf("\nfinal accuracy:\n");
  std::printf("  HACCS-P(y): %.3f\n", haccs_history.final_accuracy());
  std::printf("  Oort:       %.3f\n", oort_history.final_accuracy());
  std::printf("  Random:     %.3f\n", random_history.final_accuracy());

  // Show the substitution mechanism directly: selection counts spread over
  // cluster members rather than concentrating on one device per cluster.
  core::HaccsSelector selector(federation, haccs);
  fl::FederatedTrainer trainer(federation,
                               core::default_model_factory(federation, 99),
                               engine);
  const auto history = trainer.run(selector, *schedule);
  const auto counts = history.selection_counts(federation.num_clients());
  std::printf("\nper-cluster participation (selections per member):\n");
  for (std::size_t c = 0; c < selector.clusters().size(); ++c) {
    std::printf("  cluster %zu:", c);
    for (std::size_t id : selector.clusters()[c]) {
      std::printf(" client%zu=%zu", id, counts[id]);
    }
    std::printf("\n");
  }
  std::printf("\nreading: multiple members of each cluster participate — "
              "when the fastest is down, a same-distribution peer covers "
              "for it, which is why the accuracy curve stays smooth.\n");
  return 0;
}
