// Scenario: a geographically skewed federation.
//
// The paper's motivating example (§II-B): devices in different regions see
// different label distributions — "the distribution of alphanumeric
// characters used on a mobile phone will vary heavily by geographical
// region". We model five regions, each with its own label mixture and its
// own device-quality profile, and compare HACCS against Random and Oort on
// time-to-accuracy. HACCS's clusters recover the regions without ever
// seeing raw data.
//
// Run: ./build/examples/skewed_federation
#include <cstdio>
#include <map>

#include "src/core/haccs_system.hpp"
#include "src/select/oort.hpp"
#include "src/select/random_selector.hpp"

int main() {
  using namespace haccs;

  data::SyntheticImageConfig image_config =
      data::SyntheticImageConfig::femnist_like(10);
  image_config.height = 16;
  image_config.width = 16;
  data::SyntheticImageGenerator generator(image_config);

  // Five "regions", six devices each. Every region types a different subset
  // of characters: region r draws labels from {2r, 2r+1} (80/20) plus a
  // sprinkle of everything else.
  const std::size_t regions = 5;
  const std::size_t per_region = 6;
  Rng rng(11);
  data::FederatedDataset federation;
  federation.num_classes = 10;
  for (std::size_t r = 0; r < regions; ++r) {
    std::vector<double> mixture(10, 0.02);  // 10% sprinkled uniformly
    mixture[2 * r] += 0.60;
    mixture[2 * r + 1] += 0.20;
    for (std::size_t d = 0; d < per_region; ++d) {
      data::ClientData client{
          data::Dataset(generator.sample_shape(), 10),
          data::Dataset(generator.sample_shape(), 10)};
      const std::size_t samples = 80 + rng.uniform_index(80);
      data::fill_from_mixture(generator, mixture, samples, client.train, rng);
      data::fill_from_mixture(generator, mixture, 25, client.test, rng);
      federation.clients.push_back(std::move(client));
      federation.true_group.push_back(static_cast<int>(r));
      federation.rotation.push_back(0.0);
      federation.true_label_distribution.push_back(mixture);
      federation.style.push_back(data::ClientStyle::neutral());
    }
  }

  fl::EngineConfig engine;
  engine.rounds = 100;
  engine.clients_per_round = 6;
  engine.eval_every = 5;
  engine.local.sgd.learning_rate = 0.08;
  engine.seed = 3;

  core::HaccsConfig haccs;
  haccs.rho = 0.5;

  core::HaccsSystem system(federation, haccs, engine,
                           core::default_model_factory(federation, 99));

  // How well do the privacy-preserving clusters recover the regions?
  const auto clusters = system.cluster_labels();
  std::map<int, std::map<int, int>> confusion;  // region -> cluster -> count
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    ++confusion[federation.true_group[i]][clusters[i]];
  }
  std::printf("region -> identified clusters (member counts):\n");
  for (const auto& [region, by_cluster] : confusion) {
    std::printf("  region %d:", region);
    for (const auto& [cluster, count] : by_cluster) {
      std::printf(" cluster %d x%d", cluster, count);
    }
    std::printf("\n");
  }

  // Train with HACCS and the two baselines on the identical substrate.
  const auto haccs_history = system.train();
  select::RandomSelector random_selector;
  const auto random_history = system.train_with(random_selector);
  select::OortSelector oort_selector({});
  const auto oort_history = system.train_with(oort_selector);

  std::printf("\ntime to 70%% accuracy (simulated seconds):\n");
  std::printf("  HACCS-P(y): %s\n",
              fl::format_tta(haccs_history.time_to_accuracy(0.7)).c_str());
  std::printf("  Oort:       %s\n",
              fl::format_tta(oort_history.time_to_accuracy(0.7)).c_str());
  std::printf("  Random:     %s\n",
              fl::format_tta(random_history.time_to_accuracy(0.7)).c_str());
  std::printf("\nfinal accuracy: HACCS %.3f, Oort %.3f, Random %.3f\n",
              haccs_history.final_accuracy(), oort_history.final_accuracy(),
              random_history.final_accuracy());
  return 0;
}
