// haccs_worker — the device half of a real multi-process federated run.
//
// Rebuilds the same federation as the server from the same flags + seed,
// connects over TCP, introduces itself with a Hello frame, uploads one P(y)
// summary per hosted client (paper §IV-A), then serves TrainJob frames with
// the identical local training the in-process engine runs — the job carries
// the engine's forked RNG seed, so the round is bit-identical no matter
// which process executes it. Exits on the server's Shutdown frame, when the
// connection closes, or after --idle-timeout-ms without traffic (so an
// orphaned worker never hangs a scripted launch).
//
//   ./haccs_worker --worker-id=0 --workers=2 --port-file=/tmp/port
//       --rounds=5 --clients=12 --per-round=4
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/harness.hpp"
#include "examples/multiprocess_common.hpp"
#include "src/fl/net_driver.hpp"
#include "src/net/tcp.hpp"
#include "src/obs/obs.hpp"
#include "src/stats/summary_codec.hpp"

namespace {

void print_usage() {
  std::puts(
      "haccs_worker — multi-process federated worker\n"
      "  --host=H             server host (default 127.0.0.1)\n"
      "  --port=P             server port (default 4242)\n"
      "  --port-file=F        poll F for the port instead (server writes it)\n"
      "  --worker-id=I        this worker's id in [0, --workers)\n"
      "  --workers=N          total workers; this one hosts clients with\n"
      "                       id %% N == I (default 1)\n"
      "  --idle-timeout-ms=T  exit after T ms without traffic; <0 = wait\n"
      "                       forever (default 120000)\n"
      "workload (must match the server's): --dataset --clients --per-round\n"
      "  --rounds --classes --seed --full --noise-scale\n"
      "telemetry: --trace --metrics --events --log-level");
}

/// Polls `path` until it holds a port number (the server writes it after
/// binding — the normal race in a scripted 2-process launch).
std::uint16_t wait_for_port_file(const std::string& path, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::ifstream in(path);
    int port = 0;
    if (in && (in >> port) && port > 0 && port <= 65535) {
      return static_cast<std::uint16_t>(port);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("timed out waiting for port file " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace haccs;
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }

  bench::ExperimentConfig exp;
  exp.apply_flags(flags);
  const std::string host = flags.get_string("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(flags.get_int("port", 4242));
  const std::string port_file = flags.get_string("port-file", "");
  const auto worker_id =
      static_cast<std::uint32_t>(flags.get_int("worker-id", 0));
  const auto num_workers =
      static_cast<std::uint32_t>(flags.get_int("workers", 1));
  const int idle_timeout_ms =
      static_cast<int>(flags.get_int("idle-timeout-ms", 120000));
  flags.check_unused();
  if (num_workers == 0 || worker_id >= num_workers) {
    std::fprintf(stderr, "--worker-id must lie in [0, --workers)\n");
    return 1;
  }
  if (!port_file.empty()) port = wait_for_port_file(port_file, 30000);

  const data::FederatedDataset fed = examples::build_federation(exp);

  net::TcpConnectOptions connect_options;
  auto transport = net::connect_tcp(host, port, connect_options);
  if (!transport) {
    std::fprintf(stderr, "worker %u: cannot reach %s:%u\n", worker_id,
                 host.c_str(), port);
    return 1;
  }

  std::vector<std::size_t> hosted;
  for (std::size_t id = 0; id < fed.num_clients(); ++id) {
    if (id % num_workers == worker_id) hosted.push_back(id);
  }
  net::HelloMsg hello;
  hello.worker_id = worker_id;
  hello.num_clients = static_cast<std::uint32_t>(hosted.size());
  if (transport->send(net::encode_hello(hello)) != net::TransportStatus::Ok) {
    std::fprintf(stderr, "worker %u: handshake send failed\n", worker_id);
    return 1;
  }
  for (std::size_t id : hosted) {
    const auto summary = stats::summarize_response(fed.clients[id].train);
    const auto status = transport->send(net::encode_summary(
        stats::encode_summary_msg(static_cast<std::uint32_t>(id), summary)));
    if (status != net::TransportStatus::Ok) {
      std::fprintf(stderr, "worker %u: summary upload for client %zu failed\n",
                   worker_id, id);
      return 1;
    }
  }
  std::fprintf(stderr, "worker %u: connected to %s, hosting %zu client(s)\n",
               worker_id, transport->peer().c_str(), hosted.size());

  fl::WorkerLoopConfig loop_config;
  loop_config.worker_id = worker_id;
  loop_config.recv_timeout_ms = idle_timeout_ms;
  loop_config.exit_on_timeout = idle_timeout_ms >= 0;
  fl::WorkerLoop loop(fed,
                      core::default_model_factory(fed, examples::kModelSeed),
                      *transport, loop_config);
  const std::size_t served = loop.run();
  std::fprintf(stderr, "worker %u: done, served %zu job(s)\n", worker_id,
               served);

  obs::flush();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "haccs_worker: %s\n", e.what());
  return 1;
}
