// haccs_worker — the device half of a real multi-process federated run.
//
// Rebuilds the same federation as the server from the same flags + seed,
// connects over TCP, introduces itself with a Hello frame, uploads one P(y)
// summary per hosted client (paper §IV-A), then serves TrainJob frames with
// the identical local training the in-process engine runs — the job carries
// the engine's forked RNG seed, so the round is bit-identical no matter
// which process executes it.
//
// Serving mode (DESIGN.md §5g): when the connection drops mid-run the worker
// reconnects with capped exponential backoff + jitter, repeats the Hello +
// summary handshake (the session resume the server's fleet expects), and
// keeps serving — its WorkerLoop persists, so cross-round compression
// residuals survive the reconnect. --heartbeat-interval-ms announces
// liveness while training; --chaos-* injects seeded wire faults on the
// worker's own outbound traffic.
//
// Exit codes: 0 orderly Shutdown; 1 usage/configuration error; 3 connect
// retries exhausted; 4 idle timeout with no traffic.
//
//   ./haccs_worker --worker-id=0 --workers=2 --port-file=/tmp/port
//       --rounds=5 --clients=12 --per-round=4
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <thread>

#include "bench/harness.hpp"
#include "examples/multiprocess_common.hpp"
#include "src/common/logging.hpp"
#include "src/fl/net_driver.hpp"
#include "src/net/chaos.hpp"
#include "src/net/tcp.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/stats/summary_codec.hpp"

namespace {

constexpr int kExitConnectExhausted = 3;
constexpr int kExitIdleTimeout = 4;

void print_usage() {
  std::puts(
      "haccs_worker — multi-process federated worker\n"
      "  --host=H             server host (default 127.0.0.1)\n"
      "  --port=P             server port (default 4242)\n"
      "  --port-file=F        poll F for the port instead (server writes it)\n"
      "  --worker-id=I        this worker's id in [0, --workers)\n"
      "  --workers=N          total workers; this one hosts clients with\n"
      "                       id %% N == I (default 1)\n"
      "  --idle-timeout-ms=T  exit after T ms without traffic; <0 = wait\n"
      "                       forever (default 120000)\n"
      "serving: --heartbeat-interval-ms=T  liveness beacons while serving\n"
      "  --reconnect-attempts=N  consecutive failed connects before giving\n"
      "                       up (default 10; exit code 3)\n"
      "  --reconnect-backoff-ms=T  initial backoff, doubled per failure and\n"
      "                       capped at 32x, with jitter (default 200)\n"
      "chaos (outbound fault injection): --chaos-seed --chaos-drop\n"
      "  --chaos-dup --chaos-reorder --chaos-corrupt --chaos-truncate\n"
      "  --chaos-disconnect\n"
      "workload (must match the server's): --dataset --clients --per-round\n"
      "  --rounds --classes --seed --full --noise-scale\n"
      "telemetry: --trace --metrics --events --log-level (HACCS_LOG env is\n"
      "  honored when --log-level is absent)\n"
      "exit codes: 0 shutdown, 1 error, 3 connect exhausted, 4 idle timeout");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace haccs;
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }

  bench::ExperimentConfig exp;
  exp.apply_flags(flags);
  // Fleet launchers set one HACCS_LOG for every worker; an explicit
  // --log-level still wins (apply_flags already consumed it above).
  if (!flags.has("log-level")) {
    const char* env_level = std::getenv("HACCS_LOG");
    if (env_level != nullptr && env_level[0] != '\0') {
      set_log_level(parse_log_level(env_level));
    }
  }
  const std::string host = flags.get_string("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(flags.get_int("port", 4242));
  const std::string port_file = flags.get_string("port-file", "");
  const auto worker_id =
      static_cast<std::uint32_t>(flags.get_int("worker-id", 0));
  const auto num_workers =
      static_cast<std::uint32_t>(flags.get_int("workers", 1));
  const int idle_timeout_ms =
      static_cast<int>(flags.get_int("idle-timeout-ms", 120000));
  const int heartbeat_interval_ms =
      static_cast<int>(flags.get_int("heartbeat-interval-ms", 0));
  const int reconnect_attempts =
      static_cast<int>(flags.get_int("reconnect-attempts", 10));
  const int reconnect_backoff_ms =
      static_cast<int>(flags.get_int("reconnect-backoff-ms", 200));
  const net::ChaosOptions chaos = examples::parse_chaos_flags(flags);
  flags.check_unused();
  if (num_workers == 0 || worker_id >= num_workers) {
    std::fprintf(stderr, "--worker-id must lie in [0, --workers)\n");
    return 1;
  }
  // Span ids minted here must stay distinct from the server's and every
  // other worker's when shards are merged into one trace (§5i): salt the
  // high bits with the worker id.
  obs::set_span_id_salt(static_cast<std::uint64_t>(worker_id + 1) << 40);

  const data::FederatedDataset fed = examples::build_federation(exp);

  std::vector<std::size_t> hosted;
  for (std::size_t id = 0; id < fed.num_clients(); ++id) {
    if (id % num_workers == worker_id) hosted.push_back(id);
  }

  fl::WorkerLoopConfig loop_config;
  loop_config.worker_id = worker_id;
  loop_config.recv_timeout_ms = idle_timeout_ms;
  loop_config.exit_on_timeout = idle_timeout_ms >= 0;
  loop_config.heartbeat_interval_ms = heartbeat_interval_ms;
  // One WorkerLoop for the whole process lifetime: it owns the per-client
  // compression residuals, which must survive reconnects.
  fl::WorkerLoop loop(fed,
                      core::default_model_factory(fed, examples::kModelSeed),
                      loop_config);

  obs::Counter& reconnects =
      obs::Registry::global().counter("net_reconnects_total");
  // Deterministic jitter stream — reproducible launches, desynchronized
  // stampedes (each worker id jitters differently).
  Rng jitter_rng(exp.seed ^ 0x7ec0ffeeULL ^ worker_id);

  int failed_connects = 0;  // consecutive; reset by a served session
  std::size_t sessions = 0;
  for (;;) {
    // Re-read the port file every cycle: a server restarted with --resume
    // may have re-bound to a fresh ephemeral port.
    if (!port_file.empty()) {
      port = examples::wait_for_port_file(port_file, 30000);
    }
    auto transport = net::connect_tcp(host, port, net::TcpConnectOptions{});
    bool handshake_ok = false;
    if (transport) {
      // Session (re-)establishment: Hello with the hosted-client roster,
      // then the one-per-client summary uplink — same protocol on first
      // connect and on every resume, so the server can rebuild its view.
      handshake_ok =
          transport->send(net::encode_hello(net::HelloMsg{
              worker_id, static_cast<std::uint32_t>(hosted.size())})) ==
          net::TransportStatus::Ok;
      for (std::size_t id : hosted) {
        if (!handshake_ok) break;
        const auto summary = stats::summarize_response(fed.clients[id].train);
        handshake_ok =
            transport->send(net::encode_summary(stats::encode_summary_msg(
                static_cast<std::uint32_t>(id), summary))) ==
            net::TransportStatus::Ok;
      }
    }
    if (!transport || !handshake_ok) {
      ++failed_connects;
      if (failed_connects > reconnect_attempts) {
        std::fprintf(stderr,
                     "worker %u: %d consecutive connect attempts failed; "
                     "giving up\n",
                     worker_id, failed_connects);
        return kExitConnectExhausted;
      }
      // Capped exponential backoff with jitter in [0.5, 1.5)x.
      const int shift = std::min(failed_connects - 1, 5);
      const double backoff =
          static_cast<double>(reconnect_backoff_ms) *
          static_cast<double>(1 << shift) *
          (0.5 + jitter_rng.uniform());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int>(backoff)));
      continue;
    }
    failed_connects = 0;
    if (sessions > 0) reconnects.inc();
    ++sessions;
    std::fprintf(stderr,
                 "worker %u: session %zu on %s, hosting %zu client(s)\n",
                 worker_id, sessions, transport->peer().c_str(),
                 hosted.size());

    // Chaos wraps the established session (the handshake above runs clean;
    // chaos targets steady-state serving traffic). Fork the seed per
    // session so a reconnect does not replay the identical fault script.
    auto session =
        net::wrap_chaos(std::move(transport),
                        [&] {
                          net::ChaosOptions forked = chaos;
                          forked.seed =
                              chaos.seed ^ (0xd15c0113c7ULL * sessions) ^
                              worker_id;
                          return forked;
                        }());

    const fl::WorkerRunEnd end = loop.serve(*session);
    if (end == fl::WorkerRunEnd::Shutdown) break;
    if (end == fl::WorkerRunEnd::IdleTimeout) {
      std::fprintf(stderr, "worker %u: idle timeout, served %zu job(s)\n",
                   worker_id, loop.jobs_served());
      return kExitIdleTimeout;
    }
    std::fprintf(stderr, "worker %u: connection lost, reconnecting\n",
                 worker_id);
  }
  std::fprintf(stderr, "worker %u: done, served %zu job(s)\n", worker_id,
               loop.jobs_served());

  obs::flush();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "haccs_worker: %s\n", e.what());
  return 1;
}
