// Scenario: how much privacy can you buy before clustering breaks?
//
// Walks the full client-side path of §IV-A/IV-B explicitly: compute a P(y)
// histogram summary, add Laplace-mechanism noise at several privacy budgets,
// and watch the server's view — pairwise Hellinger distances and the
// resulting OPTICS clusters — degrade as epsilon shrinks. This is the
// paper's Fig. 3 / Fig. 8a story as a runnable walkthrough.
//
// Run: ./build/examples/private_clustering
#include <cstdio>

#include "src/common/table.hpp"
#include "src/core/pipeline.hpp"
#include "src/stats/metrics.hpp"

int main() {
  using namespace haccs;

  data::SyntheticImageConfig image_config =
      data::SyntheticImageConfig::cifar_like();
  image_config.height = 16;
  image_config.width = 16;
  data::SyntheticImageGenerator generator(image_config);

  // Ten ground-truth distribution groups, two clients each (Fig. 8a layout).
  Rng rng(5);
  const auto federation = data::partition_two_per_label(generator, 500, 10, rng);

  std::printf("federation: %zu clients, 10 ground-truth groups of 2\n\n",
              federation.num_clients());

  // Show one client's raw summary.
  const auto raw = stats::summarize_response(federation.clients[0].train);
  std::printf("client 0 label histogram (raw): ");
  for (double c : raw.label_counts.counts()) std::printf("%.0f ", c);
  std::printf("\n");

  // The same summary under two privacy budgets.
  for (double eps : {0.1, 0.01}) {
    Rng noise(99);
    const auto noised = stats::privatize(raw, stats::PrivacyConfig{eps}, noise);
    std::printf("client 0 label histogram (eps=%g):", eps);
    for (double c : noised.label_counts.counts()) std::printf(" %.1f", c);
    std::printf("  (Hellinger distortion %.3f)\n",
                stats::distance(raw, noised));
  }

  // Server-side: cluster under several budgets and score against truth.
  Table table({"epsilon", "clusters_found", "noise_pts", "exact_recovery",
               "pairwise_f1"});
  for (double eps : {1e9, 1.0, 0.1, 0.05, 0.01, 0.001}) {
    core::HaccsConfig cfg;
    cfg.privacy = stats::PrivacyConfig{eps};
    cfg.privacy_seed = 123;
    const auto labels = core::cluster_clients(federation, cfg);
    int max_label = -1, noise_count = 0;
    for (int l : labels) {
      max_label = std::max(max_label, l);
      if (l < 0) ++noise_count;
    }
    const auto scores =
        stats::pairwise_clustering_scores(labels, federation.true_group);
    const double recovery =
        stats::exact_cluster_recovery(labels, federation.true_group);
    table.add_row({eps > 1e8 ? "none" : Table::num(eps, 3),
                   std::to_string(max_label + 1), std::to_string(noise_count),
                   Table::num(recovery, 2), Table::num(scores.f1, 2)});
  }
  std::printf("\nserver-side clustering vs privacy budget:\n");
  table.print();
  std::printf("\nreading: clusters survive down to eps ~0.05 at this data "
              "size; below that the Laplace noise (Var = 2/eps^2) swamps the "
              "label structure — the paper's privacy/accuracy trade-off.\n");
  return 0;
}
