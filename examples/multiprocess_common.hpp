// Shared workload construction for the multi-process examples.
//
// haccs_server and haccs_worker each rebuild the identical federation from
// the same flags + seed (synthetic data is a pure function of the seed), so
// only parameters, updates, and summaries ever cross the wire — exactly the
// deployment model of the paper's testbed, where each device already holds
// its local data.
#pragma once

#include "bench/harness.hpp"
#include "src/common/rng.hpp"
#include "src/data/partition.hpp"

namespace haccs::examples {

inline data::FederatedDataset build_federation(
    const bench::ExperimentConfig& exp) {
  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  return data::partition_majority_label(gen, exp.make_partition_config(), rng);
}

/// The model-factory seed both processes must agree on (same constant
/// tools/haccs_run.cpp uses, so a TCP run is comparable to a local one).
inline constexpr std::uint64_t kModelSeed = 99;

}  // namespace haccs::examples
