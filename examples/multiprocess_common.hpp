// Shared workload construction for the multi-process examples.
//
// haccs_server and haccs_worker each rebuild the identical federation from
// the same flags + seed (synthetic data is a pure function of the seed), so
// only parameters, updates, and summaries ever cross the wire — exactly the
// deployment model of the paper's testbed, where each device already holds
// its local data.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "bench/harness.hpp"
#include "src/common/rng.hpp"
#include "src/data/partition.hpp"
#include "src/net/chaos.hpp"

namespace haccs::examples {

inline data::FederatedDataset build_federation(
    const bench::ExperimentConfig& exp) {
  auto gen = exp.make_generator();
  Rng rng(exp.seed);
  return data::partition_majority_label(gen, exp.make_partition_config(), rng);
}

/// The model-factory seed both processes must agree on (same constant
/// tools/haccs_run.cpp uses, so a TCP run is comparable to a local one).
inline constexpr std::uint64_t kModelSeed = 99;

/// Publishes the listen port atomically: write a sibling temp file, then
/// rename over `path`. A worker polling the file either sees nothing or the
/// complete port — never a partially written number (the old plain-fopen
/// write raced the worker's poll).
inline void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) throw std::runtime_error("cannot write " + tmp);
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot publish port file " + path);
  }
}

/// Polls `path` until it holds a port number (the upstream process writes
/// it after binding — the normal race in a scripted multi-process launch).
inline std::uint16_t wait_for_port_file(const std::string& path,
                                        int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::ifstream in(path);
    int port = 0;
    if (in && (in >> port) && port > 0 && port <= 65535) {
      return static_cast<std::uint16_t>(port);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("timed out waiting for port file " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

/// Shared --chaos-* flags (both binaries take the same knobs; each process
/// injects on its own outbound traffic).
inline net::ChaosOptions parse_chaos_flags(const Flags& flags) {
  net::ChaosOptions chaos;
  chaos.seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 1));
  chaos.drop_rate = flags.get_double("chaos-drop", 0.0);
  chaos.duplicate_rate = flags.get_double("chaos-dup", 0.0);
  chaos.reorder_rate = flags.get_double("chaos-reorder", 0.0);
  chaos.corrupt_rate = flags.get_double("chaos-corrupt", 0.0);
  chaos.truncate_rate = flags.get_double("chaos-truncate", 0.0);
  chaos.disconnect_rate = flags.get_double("chaos-disconnect", 0.0);
  return chaos;
}

}  // namespace haccs::examples
