// haccs_server — the coordinator half of a real multi-process federated run.
//
// Listens on localhost, waits for --workers haccs_worker processes, receives
// each hosted client's P(y) summary over the wire (paper §IV-A's one-time
// uplink), clusters from those summaries, then drives the standard
// FederatedTrainer round loop with every local-training job shipped as a
// TrainJob frame and every update collected as a ClientUpdate frame.
//
// The workload is rebuilt from the same flags + seed on both sides, so the
// run is directly comparable to the single-process `haccs_run` with the
// identical flags — tools/check.sh pins that the two report the same final
// accuracy.
//
// Serving mode (DESIGN.md §5g):
//   * --checkpoint + --checkpoint-every persist a crash-resume RunState
//     (atomic temp-file + rename) after every Nth round; --resume restarts
//     from it, bit-identical to the uninterrupted run.
//   * SIGTERM/SIGINT drain: finish the in-flight round, flush a final
//     checkpoint, send Shutdown frames, exit 0.
//   * --heartbeat-timeout-ms arms per-worker liveness deadlines; a silent
//     worker's jobs fail as Crash and a reconnecting process (fresh Hello +
//     summaries on the same listener) is handed back its slot.
//   * --quorum/--quorum-grace-ms commit a round once that fraction of
//     updates landed instead of blocking on stragglers (pair with
//     --overcommit to re-cover the loss by over-selection).
//   * --chaos-* wraps each accepted session in seeded outbound fault
//     injection (the worker side has the same knobs for its direction).
//
//   ./haccs_server --workers=2 --port=0 --port-file=/tmp/port
//       --rounds=5 --clients=12 --per-round=4 --summary-json=/tmp/s.json
//   ./haccs_worker --worker-id=0 --workers=2 --port-file=/tmp/port ... &
//   ./haccs_worker --worker-id=1 --workers=2 --port-file=/tmp/port ... &
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "examples/multiprocess_common.hpp"
#include "src/common/table.hpp"
#include "src/core/live_recluster.hpp"
#include "src/core/pipeline.hpp"
#include "src/fl/checkpoint.hpp"
#include "src/hier/tree_dispatcher.hpp"
#include "src/fl/net_driver.hpp"
#include "src/fl/run_summary.hpp"
#include "src/net/chaos.hpp"
#include "src/net/status.hpp"
#include "src/net/tcp.hpp"
#include "src/net/wire.hpp"
#include "src/obs/flight.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/select/dpp.hpp"
#include "src/select/fedlecc.hpp"
#include "src/select/hics.hpp"
#include "src/select/random_selector.hpp"
#include "src/stats/summary_codec.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
extern "C" void handle_stop_signal(int) { g_stop = 1; }

void print_usage() {
  std::puts(
      "haccs_server — multi-process federated coordinator\n"
      "  --workers=N          worker processes to wait for (default 1)\n"
      "  --port=P             listen port; 0 = ephemeral (default 4242)\n"
      "  --port-file=F        write the resolved port to F (for launchers)\n"
      "  --strategy=S         random|haccs-py|dpp|fedlecc|hics "
      "(default haccs-py)\n"
      "  --rho=R              Eq. 7 trade-off (default 0.5)\n"
      "  --accept-timeout-ms=T  per-worker accept deadline (default 30000)\n"
      "  --io-timeout-ms=T    per-frame send/recv deadline (default 120000)\n"
      "  --summary-json=F     machine-readable run summary\n"
      "serving: --checkpoint=F  crash-resume checkpoint file\n"
      "  --checkpoint-every=N  persist every N rounds (default 1)\n"
      "  --resume             restore from --checkpoint and continue\n"
      "  --heartbeat-timeout-ms=T  declare a silent worker dead after T ms\n"
      "  --quorum=Q           commit a round at Q of its updates (default 1)\n"
      "  --quorum-grace-ms=T  straggler grace after quorum (default 0)\n"
      "  --overcommit=F       over-select by F (e.g. 0.5 = +50%)\n"
      "tree (DESIGN.md §5j): --aggs=A  accept A haccs_agg mid-tier\n"
      "                       aggregators instead of workers; --workers\n"
      "                       still names the federation-wide worker count\n"
      "                       (A must divide it). Dense aggregation is\n"
      "                       bit-identical to a flat --agg-groups=A run.\n"
      "  --agg-groups=A       flat grouped aggregation: fold updates into A\n"
      "                       per-group partial sums in-process (the tree\n"
      "                       bit-identity baseline; default 0 = classic)\n"
      "  --live-recluster     re-cluster the live population on every\n"
      "                       worker/aggregator liveness edge (§5h)\n"
      "chaos (outbound fault injection): --chaos-seed --chaos-drop\n"
      "  --chaos-dup --chaos-reorder --chaos-corrupt --chaos-truncate\n"
      "  --chaos-disconnect\n"
      "workload (must match the workers'): --dataset --clients --per-round\n"
      "  --rounds --classes --seed --full --noise-scale\n"
      "ops plane (DESIGN.md §5i):\n"
      "  --status-port=P      serve /metrics, /status, /healthz on\n"
      "                       127.0.0.1:P; 0 = ephemeral (default: off)\n"
      "  --status-port-file=F write the resolved status port to F\n"
      "  --flight-dir=D       crash flight recorder: dump flight-<ts>.json\n"
      "                       into D on SIGSEGV/SIGABRT/drain\n"
      "telemetry: --trace --metrics --events --log-level\n"
      "  (--trace merges worker span shards into one Chrome trace)");
}

/// The worker fleet: initial accept, per-session chaos wrapping, and
/// mid-run re-accept of reconnecting workers (serving mode).
///
/// Reconnects are staged in per-worker pending slots and only swapped into
/// the live slot inside reacquire(w) for exactly the worker the dispatcher
/// has declared dead. A worker can observe a disconnect and re-Hello before
/// the server's next send/recv on the old link notices, so installing the
/// fresh session eagerly would destroy a transport the dispatcher still
/// holds a raw pointer to (use-after-free on the next fan-out).
class Fleet {
 public:
  Fleet(haccs::net::TcpListener& listener, std::size_t num_workers,
        std::size_t num_clients, int io_timeout_ms,
        haccs::net::ChaosOptions chaos)
      : listener_(listener),
        num_clients_(num_clients),
        io_timeout_ms_(io_timeout_ms),
        chaos_(chaos),
        slots_(num_workers),
        pending_(num_workers),
        generation_(num_workers, 0),
        summaries_(num_clients),
        have_summary_(num_clients, false) {}

  /// Blocks until all workers have completed the Hello + summary handshake.
  bool accept_all(int accept_timeout_ms) {
    std::size_t connected = 0;
    while (connected < slots_.size()) {
      auto transport = listener_.accept(accept_timeout_ms);
      if (!transport) {
        std::fprintf(stderr, "timed out waiting for worker %zu of %zu\n",
                     connected + 1, slots_.size());
        return false;
      }
      const int w = handshake(std::move(transport));
      if (w < 0) return false;
      const auto slot = static_cast<std::size_t>(w);
      if (slots_[slot]) {
        // A second Hello for an id that already completed the handshake is a
        // launcher bug (two workers sharing a --worker-id). Fatal, as it was
        // before serving mode: merely dropping the duplicate would let the
        // misconfigured worker reconnect-with-backoff forever, each accept
        // rearming the deadline — the run must not silently start with
        // fewer distinct workers than --workers, nor hang here.
        std::fprintf(stderr,
                     "duplicate Hello for worker %d — check each worker's "
                     "--worker-id\n",
                     w);
        pending_[slot].reset();
        return false;
      }
      slots_[slot] = std::move(pending_[slot]);
      ++connected;
    }
    return true;
  }

  /// TransportDispatcher reacquire hook: drains any pending reconnect
  /// attempts (short accept timeout — called once per round per dead
  /// worker), then hands back worker `w`'s slot if a fresh session arrived.
  /// Only slot `w` may be touched here: the dispatcher has declared exactly
  /// that transport dead, so freeing it is safe; reconnects from other
  /// workers stay parked in pending_ until their own reacquire call.
  haccs::net::Transport* reacquire(std::size_t w) {
    for (;;) {
      auto transport = listener_.accept(kReacceptTimeoutMs);
      if (!transport) break;
      handshake(std::move(transport));  // failures just drop the connection
    }
    if (w < pending_.size() && pending_[w]) {
      slots_[w] = std::move(pending_[w]);
      return slots_[w].get();
    }
    return nullptr;
  }

  const std::vector<std::unique_ptr<haccs::net::Transport>>& slots() const {
    return slots_;
  }
  const std::vector<haccs::core::ClientSummary>& summaries() const {
    return summaries_;
  }
  bool have_all_summaries() const {
    for (bool have : have_summary_) {
      if (!have) return false;
    }
    return true;
  }

 private:
  static constexpr int kReacceptTimeoutMs = 200;

  /// Runs the Hello + summary handshake on a fresh connection; on success
  /// stages it (chaos-wrapped) in its worker's pending slot and returns the
  /// worker id, else returns -1. A newer pending session replaces an older
  /// one — only the latest reconnect matters, and nothing outside this
  /// class ever saw the replaced transport.
  int handshake(std::unique_ptr<haccs::net::Transport> transport) {
    namespace net = haccs::net;
    net::Frame frame;
    if (transport->recv(&frame, io_timeout_ms_) != net::TransportStatus::Ok ||
        frame.type != net::MessageType::Hello) {
      std::fprintf(stderr, "handshake with %s failed (no Hello frame)\n",
                   transport->peer().c_str());
      return -1;
    }
    const net::HelloMsg hello = net::decode_hello(frame);
    if (hello.worker_id >= slots_.size()) {
      std::fprintf(stderr, "bad worker id %u (expected 0..%zu)\n",
                   hello.worker_id, slots_.size() - 1);
      return -1;
    }
    // §IV-A uplink: one P(y) summary per hosted client — sent on the first
    // connect and repeated on every reconnect (session resume), so a
    // restarted server can rebuild its view from the fleet alone.
    for (std::uint32_t s = 0; s < hello.num_clients; ++s) {
      if (transport->recv(&frame, io_timeout_ms_) != net::TransportStatus::Ok ||
          frame.type != net::MessageType::Summary) {
        std::fprintf(stderr, "worker %u: summary %u of %u never arrived\n",
                     hello.worker_id, s + 1, hello.num_clients);
        return -1;
      }
      const net::SummaryMsg msg = net::decode_summary(frame);
      if (msg.client_id >= num_clients_) {
        std::fprintf(stderr, "summary for unknown client %u\n", msg.client_id);
        return -1;
      }
      haccs::core::ClientSummary summary;
      summary.kind = haccs::stats::SummaryKind::Response;
      summary.response = haccs::stats::decode_response_summary(msg);
      summaries_[msg.client_id] = std::move(summary);
      have_summary_[msg.client_id] = true;
    }
    const auto w = static_cast<std::size_t>(hello.worker_id);
    // Chaos wraps the established session; the seed forks per (worker,
    // session) so a reconnect does not replay the identical fault script.
    net::ChaosOptions forked = chaos_;
    forked.seed = chaos_.seed ^ (0xa11ce11aULL * (w + 1)) ^
                  (0x5e5510ULL * ++generation_[w]);
    std::fprintf(stderr, "worker %u connected (%s), hosting %u client(s)\n",
                 hello.worker_id, transport->peer().c_str(),
                 hello.num_clients);
    pending_[w] = net::wrap_chaos(std::move(transport), forked);
    return static_cast<int>(w);
  }

  haccs::net::TcpListener& listener_;
  std::size_t num_clients_;
  int io_timeout_ms_;
  haccs::net::ChaosOptions chaos_;
  std::vector<std::unique_ptr<haccs::net::Transport>> slots_;
  /// Handshaken reconnects staged per worker until the dispatcher declares
  /// the old transport dead and claims the replacement via reacquire().
  std::vector<std::unique_ptr<haccs::net::Transport>> pending_;
  std::vector<std::size_t> generation_;
  std::vector<haccs::core::ClientSummary> summaries_;
  std::vector<bool> have_summary_;
};

/// The aggregator fleet (tree mode, §5j): accepts --aggs haccs_agg
/// connections, each announcing its subtree with TopologyHello and relaying
/// the summaries its workers uploaded. No reacquire path — a mid-tier
/// process owns live downstream state (fold frontier, worker sessions) that
/// a fresh process cannot resume, so a dead aggregator stays dead and the
/// TreeDispatcher contains the loss (salvage or torn round).
class AggFleet {
 public:
  AggFleet(haccs::net::TcpListener& listener, std::size_t num_aggs,
           std::size_t num_workers, std::size_t num_clients,
           int io_timeout_ms, haccs::net::ChaosOptions chaos)
      : listener_(listener),
        num_workers_(num_workers),
        num_clients_(num_clients),
        io_timeout_ms_(io_timeout_ms),
        chaos_(chaos),
        slots_(num_aggs),
        summaries_(num_clients),
        have_summary_(num_clients, false) {}

  /// Blocks until every aggregator has completed the TopologyHello +
  /// summary-relay handshake. An aggregator only announces AFTER its own
  /// downstream handshake finished, so the deadline must cover the workers'
  /// connect time too.
  bool accept_all(int accept_timeout_ms) {
    namespace net = haccs::net;
    std::size_t connected = 0;
    while (connected < slots_.size()) {
      auto transport = listener_.accept(accept_timeout_ms);
      if (!transport) {
        std::fprintf(stderr, "timed out waiting for aggregator %zu of %zu\n",
                     connected + 1, slots_.size());
        return false;
      }
      net::Frame frame;
      if (transport->recv(&frame, io_timeout_ms_) !=
              net::TransportStatus::Ok ||
          frame.type != net::MessageType::TopologyHello) {
        std::fprintf(stderr,
                     "handshake with %s failed (no TopologyHello frame)\n",
                     transport->peer().c_str());
        return false;
      }
      const net::TopologyHelloMsg hello = net::decode_topology_hello(frame);
      const std::size_t per = num_workers_ / slots_.size();
      if (hello.num_aggs != slots_.size() || hello.agg_id >= slots_.size() ||
          hello.worker_begin != hello.agg_id * per ||
          hello.worker_end != (hello.agg_id + 1) * per) {
        std::fprintf(stderr,
                     "aggregator topology mismatch (agg %u/%u, workers "
                     "[%u, %u)) — check --aggs/--workers on every tier\n",
                     hello.agg_id, hello.num_aggs, hello.worker_begin,
                     hello.worker_end);
        return false;
      }
      if (slots_[hello.agg_id]) {
        std::fprintf(stderr,
                     "duplicate TopologyHello for aggregator %u — check "
                     "each aggregator's --agg-id\n",
                     hello.agg_id);
        return false;
      }
      // The relayed §IV-A uplink: the subtree's one-per-client summaries.
      for (std::uint32_t s = 0; s < hello.num_clients; ++s) {
        if (transport->recv(&frame, io_timeout_ms_) !=
                net::TransportStatus::Ok ||
            frame.type != net::MessageType::Summary) {
          std::fprintf(stderr, "agg %u: summary %u of %u never arrived\n",
                       hello.agg_id, s + 1, hello.num_clients);
          return false;
        }
        const net::SummaryMsg msg = net::decode_summary(frame);
        if (msg.client_id >= num_clients_) {
          std::fprintf(stderr, "summary for unknown client %u\n",
                       msg.client_id);
          return false;
        }
        haccs::core::ClientSummary summary;
        summary.kind = haccs::stats::SummaryKind::Response;
        summary.response = haccs::stats::decode_response_summary(msg);
        summaries_[msg.client_id] = std::move(summary);
        have_summary_[msg.client_id] = true;
      }
      net::ChaosOptions forked = chaos_;
      forked.seed = chaos_.seed ^ (0xa11ce11aULL * (hello.agg_id + 1));
      std::fprintf(stderr,
                   "aggregator %u connected (%s), fronting workers [%u, %u) "
                   "with %u client(s)\n",
                   hello.agg_id, transport->peer().c_str(),
                   hello.worker_begin, hello.worker_end, hello.num_clients);
      slots_[hello.agg_id] = net::wrap_chaos(std::move(transport), forked);
      ++connected;
    }
    return true;
  }

  const std::vector<std::unique_ptr<haccs::net::Transport>>& slots() const {
    return slots_;
  }
  const std::vector<haccs::core::ClientSummary>& summaries() const {
    return summaries_;
  }
  bool have_all_summaries() const {
    for (bool have : have_summary_) {
      if (!have) return false;
    }
    return true;
  }

 private:
  haccs::net::TcpListener& listener_;
  std::size_t num_workers_;
  std::size_t num_clients_;
  int io_timeout_ms_;
  haccs::net::ChaosOptions chaos_;
  std::vector<std::unique_ptr<haccs::net::Transport>> slots_;
  std::vector<haccs::core::ClientSummary> summaries_;
  std::vector<bool> have_summary_;
};

}  // namespace

int main(int argc, char** argv) try {
  using namespace haccs;
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }

  bench::ExperimentConfig exp;
  exp.apply_flags(flags);
  // Wire telemetry (net_bytes_*_total, net_frames_corrupt_total) is the
  // point of this binary, so the metrics pillar is always on here — the
  // summary reports actual transported bytes, not just priced ones.
  obs::set_metrics_enabled(true);
  const auto num_workers =
      static_cast<std::size_t>(flags.get_int("workers", 1));
  const auto port_flag = static_cast<std::uint16_t>(flags.get_int("port", 4242));
  const std::string port_file = flags.get_string("port-file", "");
  const std::string strategy = flags.get_string("strategy", "haccs-py");
  const double rho = flags.get_double("rho", 0.5);
  const int accept_timeout_ms =
      static_cast<int>(flags.get_int("accept-timeout-ms", 30000));
  const int io_timeout_ms =
      static_cast<int>(flags.get_int("io-timeout-ms", 120000));
  const std::string summary_json = flags.get_string("summary-json", "");
  const std::string checkpoint_path = flags.get_string("checkpoint", "");
  const auto checkpoint_every =
      static_cast<std::size_t>(flags.get_int("checkpoint-every", 1));
  const bool resume = flags.get_bool("resume", false);
  const int heartbeat_timeout_ms =
      static_cast<int>(flags.get_int("heartbeat-timeout-ms", 0));
  const double quorum = flags.get_double("quorum", 1.0);
  const int quorum_grace_ms =
      static_cast<int>(flags.get_int("quorum-grace-ms", 0));
  const double overcommit = flags.get_double("overcommit", 0.0);
  const auto num_aggs = static_cast<std::size_t>(flags.get_int("aggs", 0));
  const auto agg_groups =
      static_cast<std::size_t>(flags.get_int("agg-groups", 0));
  const bool live_recluster = flags.get_bool("live-recluster", false);
  const int status_port = static_cast<int>(flags.get_int("status-port", -1));
  const std::string status_port_file =
      flags.get_string("status-port-file", "");
  const std::string flight_dir = flags.get_string("flight-dir", "");
  // apply_flags already consumed --trace to configure the pillar; the path
  // is re-read here because the merged multi-process trace overwrites the
  // plain single-process flush at exit.
  const std::string trace_path = flags.get_string("trace", "");
  const net::ChaosOptions chaos = examples::parse_chaos_flags(flags);
  flags.check_unused();
  if (num_workers == 0) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 1;
  }
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint\n");
    return 1;
  }
  if (num_aggs > 0 && agg_groups > 0) {
    std::fprintf(stderr,
                 "--aggs and --agg-groups are exclusive (a tree run IS the "
                 "grouped aggregation)\n");
    return 1;
  }
  if ((num_aggs > 0 && num_workers % num_aggs != 0) ||
      (agg_groups > 0 && num_workers % agg_groups != 0)) {
    std::fprintf(stderr, "--aggs/--agg-groups must divide --workers\n");
    return 1;
  }
  if (num_aggs > 0 && quorum < 1.0) {
    std::fprintf(stderr,
                 "--quorum is not supported in tree mode (the mid tier owns "
                 "straggler deadlines via --round-timeout-ms)\n");
    return 1;
  }

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  // ---- crash flight recorder (§5i) ----
  if (!flight_dir.empty()) {
    obs::FlightRecorder::global().enable(flight_dir);
    obs::FlightRecorder::global().install_crash_handlers();
    std::fprintf(stderr, "flight recorder armed: %s\n",
                 obs::FlightRecorder::global().path().c_str());
  }

  // Both processes rebuild the identical federation from the same flags;
  // only parameters, updates, and summaries cross the wire.
  const data::FederatedDataset fed = examples::build_federation(exp);
  auto engine_config = exp.make_engine_config(fed);
  engine_config.overcommit = overcommit;

  // ---- crash-resume: load before accepting, fail fast on a bad file ----
  std::optional<fl::RunState> resume_state;
  if (resume) {
    if (std::ifstream(checkpoint_path).good()) {
      resume_state = fl::load_run_state(checkpoint_path);
      std::fprintf(stderr, "resuming from %s at round %zu of %zu\n",
                   checkpoint_path.c_str(), resume_state->next_epoch,
                   engine_config.rounds);
    } else {
      std::fprintf(stderr, "--resume: no checkpoint at %s, starting fresh\n",
                   checkpoint_path.c_str());
    }
  }

  // ---- accept the worker fleet ----
  net::TcpListener listener(port_flag);
  if (!port_file.empty()) examples::write_port_file(port_file, listener.port());
  std::fprintf(stderr,
               "listening on 127.0.0.1:%u, waiting for %zu %s\n",
               listener.port(), num_aggs > 0 ? num_aggs : num_workers,
               num_aggs > 0 ? "aggregator(s)" : "worker(s)");

  // Exactly one fleet exists: workers (flat) or mid-tier aggregators
  // (tree). Both yield the same wire-borne summary view.
  std::optional<Fleet> fleet;
  std::optional<AggFleet> agg_fleet;
  if (num_aggs > 0) {
    agg_fleet.emplace(listener, num_aggs, num_workers, fed.num_clients(),
                      io_timeout_ms, chaos);
    if (!agg_fleet->accept_all(accept_timeout_ms)) return 1;
  } else {
    fleet.emplace(listener, num_workers, fed.num_clients(), io_timeout_ms,
                  chaos);
    if (!fleet->accept_all(accept_timeout_ms)) return 1;
  }
  const std::vector<core::ClientSummary>& wire_summaries =
      num_aggs > 0 ? agg_fleet->summaries() : fleet->summaries();
  const bool all_summaries = num_aggs > 0 ? agg_fleet->have_all_summaries()
                                          : fleet->have_all_summaries();

  // ---- strategy ----
  std::size_t num_clusters = 0;  ///< reported on /status (0 = unclustered)
  core::HaccsConfig haccs;
  haccs.rho = rho;
  haccs.initial_loss = engine_config.initial_loss;
  haccs.summary = stats::SummaryKind::Response;
  std::unique_ptr<fl::ClientSelector> selector;
  core::HaccsSelector* haccs_selector_ptr = nullptr;  ///< live re-cluster hook
  if (strategy == "random") {
    selector = std::make_unique<select::RandomSelector>();
  } else if (strategy == "haccs-py") {
    if (!all_summaries) {
      std::fprintf(stderr,
                   "missing client summaries — check each worker's "
                   "--worker-id/--workers against --workers here\n");
      return 1;
    }
    // Cluster from the summaries the workers actually sent: the wire-borne
    // equivalent of core::cluster_clients (and identical to it for the same
    // flags, since the f64 tables round-trip bit-exactly).
    const auto labels = core::cluster_distances(
        core::summary_distances(wire_summaries), haccs);
    auto haccs_selector = std::make_unique<core::HaccsSelector>(labels, haccs);
    // The selector's effective count (DBSCAN noise remapped to singleton
    // clusters), which is what scheduling actually operates on.
    num_clusters = haccs_selector->num_clusters();
    haccs_selector_ptr = haccs_selector.get();
    selector = std::move(haccs_selector);
  } else if (strategy == "dpp" || strategy == "fedlecc" ||
             strategy == "hics") {
    if (!all_summaries) {
      std::fprintf(stderr,
                   "missing client summaries — check each worker's "
                   "--worker-id/--workers against --workers here\n");
      return 1;
    }
    // These selectors key off each client's label histogram, which is
    // exactly the wire-borne P(y) response summary.
    std::vector<std::vector<double>> label_counts;
    label_counts.reserve(wire_summaries.size());
    for (const auto& s : wire_summaries) {
      if (s.kind != stats::SummaryKind::Response) {
        std::fprintf(stderr,
                     "--strategy=%s needs response (P(y)) summaries\n",
                     strategy.c_str());
        return 1;
      }
      const auto counts = s.response.label_counts.counts();
      label_counts.emplace_back(counts.begin(), counts.end());
    }
    if (strategy == "dpp") {
      select::DppConfig cfg;
      cfg.initial_loss = engine_config.initial_loss;
      selector = std::make_unique<select::DppSelector>(std::move(label_counts),
                                                       cfg);
    } else if (strategy == "fedlecc") {
      select::FedLeccConfig cfg;
      cfg.initial_loss = engine_config.initial_loss;
      auto fedlecc = std::make_unique<select::FedLeccSelector>(
          std::move(label_counts), cfg);
      num_clusters = fedlecc->num_clusters();
      selector = std::move(fedlecc);
    } else {
      select::HicsConfig cfg;
      cfg.initial_loss = engine_config.initial_loss;
      selector = std::make_unique<select::HicsSelector>(std::move(label_counts),
                                                        cfg);
    }
  } else {
    std::fprintf(stderr,
                 "unknown strategy '%s' (random|haccs-py|dpp|fedlecc|hics)\n",
                 strategy.c_str());
    return 1;
  }

  // ---- train over the transports ----
  fl::LocalWorkConfig work;
  work.local = engine_config.local;
  work.fedprox = engine_config.algorithm == fl::LocalAlgorithm::FedProx;
  work.fedprox_mu = engine_config.fedprox_mu;
  work.compression = engine_config.compression;

  fl::TransportDispatcherConfig dispatch_config;
  dispatch_config.work = work;
  dispatch_config.send_timeout_ms = io_timeout_ms;
  dispatch_config.recv_timeout_ms = io_timeout_ms;
  dispatch_config.heartbeat_timeout_ms = heartbeat_timeout_ms;
  dispatch_config.quorum_fraction = quorum;
  dispatch_config.quorum_grace_ms = quorum_grace_ms;
  // Grouped aggregation (§5j): the flat baseline a tree run must match
  // bit-for-bit. The norm threshold must mirror the engine's so the fold
  // rejects exactly the updates the engine itself would.
  dispatch_config.agg_groups = agg_groups;
  dispatch_config.max_update_norm = engine_config.max_update_norm;
  // Liveness mode implies fleet management: dead workers may reconnect and
  // reclaim their slot. With the default flags the dispatcher stays on the
  // original strictly-serial path, byte-identical to earlier releases.
  if (fleet && (heartbeat_timeout_ms > 0 || quorum < 1.0)) {
    dispatch_config.reacquire = [&fleet](std::size_t w) {
      return fleet->reacquire(w);
    };
  }

  // ---- live re-cluster (§5h): membership follows liveness edges ----
  std::optional<core::LiveClusterTracker> live_tracker;
  if (live_recluster) {
    if (haccs_selector_ptr == nullptr) {
      std::fprintf(stderr, "--live-recluster requires --strategy=haccs-py\n");
      return 1;
    }
    // A liveness edge covers one dispatcher peer: a worker's hosted clients
    // in flat mode, a whole subtree in tree mode.
    const std::size_t members = num_aggs > 0 ? num_aggs : num_workers;
    std::vector<std::vector<std::size_t>> clients_of_member(members);
    for (std::size_t c = 0; c < fed.num_clients(); ++c) {
      const std::size_t w = c % num_workers;
      clients_of_member[num_aggs > 0 ? w / (num_workers / num_aggs) : w]
          .push_back(c);
    }
    live_tracker.emplace(wire_summaries, std::move(clients_of_member), haccs);
  }
  auto on_liveness = [&](std::size_t member, bool alive) {
    if (!live_tracker) return;
    live_tracker->on_member(member, alive);
    // Refresh immediately: the dispatcher fires edges on the engine thread,
    // so the new labels are in place before the next round's select().
    live_tracker->refresh(*haccs_selector_ptr);
  };
  if (live_tracker) dispatch_config.on_liveness = on_liveness;

  // ---- ops plane: trace-shard collection + live status (§5i) ----
  // Shards arrive on the dispatcher's collection path during rounds and on
  // the post-Shutdown drain below — both on this thread, so no lock.
  std::vector<obs::WorkerTrack> worker_tracks;
  auto collect_shard = [&worker_tracks](net::TraceShardMsg&& shard) {
    obs::WorkerTrack track;
    track.worker_id = shard.worker_id;
    track.label = "worker-" + std::to_string(shard.worker_id);
    // Upper-bound clock alignment: server-now at receipt minus the worker's
    // clock at send (both ns since their own process start).
    track.clock_offset_ns = static_cast<std::int64_t>(obs::now_ns()) -
                            static_cast<std::int64_t>(shard.send_ns);
    track.events = std::move(shard.events);
    worker_tracks.push_back(std::move(track));
  };
  if (obs::trace_enabled()) dispatch_config.on_trace_shard = collect_shard;

  // Board rows are the dispatcher's direct peers: workers in flat mode,
  // aggregators in tree mode (each row's `queued` gauge is that peer's
  // outstanding-frame depth, §5j backpressure).
  fl::ServingStatusBoard status_board(num_aggs > 0 ? num_aggs : num_workers);
  const char* const tier = num_aggs > 0 ? "root" : "flat";
  std::optional<net::StatusServer> status_server;
  if (status_port >= 0) {
    dispatch_config.status_board = &status_board;
    const auto started = std::chrono::steady_clock::now();
    net::StatusEndpoints endpoints;
    endpoints.metrics_text = [] {
      return obs::Registry::global().to_prometheus();
    };
    endpoints.status_json = [&status_board, num_clusters, started, tier] {
      const double uptime_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      const auto& wire = net::NetMetrics::get();
      const std::uint64_t sent = wire.bytes_sent.value();
      const std::uint64_t received = wire.bytes_received.value();
      obs::JsonObject o;
      o.field("tier", tier)
          .field("uptime_s", uptime_s)
          .field("clusters", num_clusters)
          .field("net_bytes_sent", sent)
          .field("net_bytes_received", received)
          .field("downlink_rate_bps",
                 uptime_s > 0 ? static_cast<double>(sent) / uptime_s : 0.0)
          .field("uplink_rate_bps",
                 uptime_s > 0 ? static_cast<double>(received) / uptime_s
                              : 0.0)
          .field_raw("serving", status_board.to_json());
      return o.str();
    };
    status_server.emplace(static_cast<std::uint16_t>(status_port),
                          std::move(endpoints));
    if (!status_port_file.empty()) {
      examples::write_port_file(status_port_file, status_server->port());
    }
    std::fprintf(stderr, "status endpoint on 127.0.0.1:%u "
                 "(/metrics /status /healthz)\n",
                 status_server->port());
  }

  std::vector<net::Transport*> peer_ptrs;
  const auto& peer_slots = num_aggs > 0 ? agg_fleet->slots() : fleet->slots();
  peer_ptrs.reserve(peer_slots.size());
  for (const auto& t : peer_slots) peer_ptrs.push_back(t.get());

  std::optional<fl::TransportDispatcher> flat_dispatcher;
  std::optional<hier::TreeDispatcher> tree_dispatcher;
  if (num_aggs > 0) {
    hier::TreeDispatcherConfig tree_config;
    tree_config.work = work;
    tree_config.num_workers = num_workers;
    tree_config.send_timeout_ms = io_timeout_ms;
    tree_config.recv_timeout_ms = io_timeout_ms;
    tree_config.heartbeat_timeout_ms = heartbeat_timeout_ms;
    tree_config.max_update_norm = engine_config.max_update_norm;
    if (obs::trace_enabled()) tree_config.on_trace_shard = collect_shard;
    if (status_port >= 0) tree_config.status_board = &status_board;
    if (live_tracker) tree_config.on_liveness = on_liveness;
    tree_dispatcher.emplace(std::move(peer_ptrs), std::move(tree_config));
    engine_config.dispatcher = &*tree_dispatcher;
  } else {
    flat_dispatcher.emplace(std::move(peer_ptrs), dispatch_config);
    engine_config.dispatcher = &*flat_dispatcher;
  }
  engine_config.stop_requested = [] { return g_stop != 0; };

  // Checkpoint cadence: persist every Nth round, plus the final round and
  // the round a SIGTERM/SIGINT drain stops after (that save is what
  // --resume restarts from). Skipped rounds never materialize the snapshot,
  // so cadenced checkpointing costs O(history) per save, not per round.
  if (!checkpoint_path.empty()) {
    engine_config.on_checkpoint =
        [&](std::size_t next_epoch,
            const fl::EngineConfig::RunStateFactory& snapshot) {
          const bool cadence =
              checkpoint_every == 0 || next_epoch % checkpoint_every == 0;
          if (!cadence && g_stop == 0 && next_epoch < engine_config.rounds) {
            return;
          }
          fl::save_run_state(snapshot(), checkpoint_path);
        };
  }

  fl::FederatedTrainer trainer(
      fed, core::default_model_factory(fed, examples::kModelSeed),
      engine_config);
  std::fprintf(stderr, "running %s: %zu clients, %zu/round, %zu rounds, "
               "%zu worker process(es)\n",
               selector->name().c_str(), fed.num_clients(),
               engine_config.clients_per_round, engine_config.rounds,
               num_workers);
  const auto schedule = sim::make_always_available(fed.num_clients());
  const fl::TrainingHistory history = trainer.run(
      *selector, *schedule, resume_state ? &*resume_state : nullptr);

  const bool drained = g_stop != 0 &&
                       history.records().size() < engine_config.rounds;
  if (drained) {
    std::fprintf(stderr,
                 "stop signal received: drained after round %zu of %zu\n",
                 history.records().size(), engine_config.rounds);
    // A drain is the orderly half of a crash — persist the same evidence.
    obs::FlightRecorder::global().dump("sigterm-drain");
  }
  // ---- wind down the fleet ----
  net::EvalReportMsg report;
  report.epoch = history.records().size();
  report.accuracy = history.final_accuracy();
  report.loss = history.records().empty()
                    ? 0.0
                    : history.records().back().global_loss;
  if (obs::trace_enabled()) {
    // A valid context on the EvalReport tells each worker to ship its
    // final-round span shard before the Shutdown lands.
    report.trace.trace_id = obs::process_trace_id();
    report.trace.round = static_cast<std::int64_t>(history.records().size());
  }
  for (const auto& t : peer_slots) {
    if (!t) continue;
    t->send(net::encode_eval_report(report), io_timeout_ms);
    t->send(net::encode_shutdown(), io_timeout_ms);
  }
  if (obs::trace_enabled()) {
    // Drain the final TraceShards shipped in response to the traced
    // EvalReport: one per worker in flat mode, the whole relayed subtree
    // per aggregator in tree mode. Late heartbeats are skipped; Closed (or
    // the shard quota) ends that peer's drain.
    const std::size_t shards_per_peer =
        num_aggs > 0 ? num_workers / num_aggs : 1;
    for (const auto& t : peer_slots) {
      if (!t) continue;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(3000);
      std::size_t collected = 0;
      while (collected < shards_per_peer &&
             std::chrono::steady_clock::now() < deadline) {
        net::Frame frame;
        const auto status = t->recv(&frame, 250);
        if (status == net::TransportStatus::Closed) break;
        if (status != net::TransportStatus::Ok) continue;
        if (frame.type == net::MessageType::TraceShard) {
          try {
            collect_shard(net::decode_trace_shard(frame));
          } catch (const net::WireError& e) {
            std::fprintf(stderr, "discarding bad trace shard: %s\n",
                         e.what());
          }
          ++collected;
          continue;
        }
        if (frame.type != net::MessageType::Heartbeat) break;
      }
    }
  }

  // ---- report ----
  auto counter_value = [](const char* name) {
    return obs::Registry::global().counter(name).value();
  };
  const auto& wire = net::NetMetrics::get();
  Table summary({"metric", "value"});
  summary.add_row({"strategy", selector->name()});
  summary.add_row({"workers", std::to_string(num_workers)});
  if (num_aggs > 0) summary.add_row({"aggs", std::to_string(num_aggs)});
  if (agg_groups > 0) {
    summary.add_row({"agg_groups", std::to_string(agg_groups)});
  }
  summary.add_row({"rounds_completed", std::to_string(history.records().size())});
  summary.add_row({"final_accuracy", Table::num(history.final_accuracy(), 4)});
  summary.add_row({"best_accuracy", Table::num(history.best_accuracy(), 4)});
  summary.add_row({"total_sim_time_s", Table::num(history.total_time(), 1)});
  summary.add_row(
      {"uplink_bytes", std::to_string(history.total_uplink_bytes())});
  summary.add_row(
      {"downlink_bytes", std::to_string(history.total_downlink_bytes())});
  summary.add_row(
      {"net_bytes_sent", std::to_string(wire.bytes_sent.value())});
  summary.add_row(
      {"net_bytes_received", std::to_string(wire.bytes_received.value())});
  summary.add_row(
      {"net_frames_corrupt", std::to_string(wire.frames_corrupt.value())});
  summary.add_row({"net_reconnects",
                   std::to_string(counter_value("net_reconnects_total"))});
  summary.add_row({"heartbeats_missed",
                   std::to_string(counter_value("heartbeats_missed_total"))});
  summary.add_row(
      {"rounds_quorum_degraded",
       std::to_string(counter_value("rounds_quorum_degraded_total"))});
  summary.add_row(
      {"checkpoints_written",
       std::to_string(counter_value("checkpoints_written_total"))});
  summary.print();

  if (!summary_json.empty()) {
    obs::JsonObject o;
    o.field("strategy", selector->name())
        .field("tier", tier)
        .field("workers", num_workers)
        .field("aggs", num_aggs)
        .field("agg_groups", agg_groups)
        .field("rounds", engine_config.rounds)
        .field("rounds_completed", history.records().size())
        .field("resumed", resume_state.has_value())
        .field("drained", drained)
        .field("clients", fed.num_clients())
        .field("per_round", engine_config.clients_per_round)
        .field("seed", exp.seed);
    fl::append_summary_history(o, history);
    o.field("net_bytes_sent", wire.bytes_sent.value())
        .field("net_bytes_received", wire.bytes_received.value())
        .field("net_frames_corrupt", wire.frames_corrupt.value());
    fl::append_summary_counters(o);
    if (!fl::write_summary_json(o, summary_json)) return 1;
  }

  obs::flush();
  if (obs::trace_enabled() && !trace_path.empty()) {
    // Overwrite the single-process trace flush() just wrote with the merged
    // multi-process view: server spans on pid 1, one Chrome "process" per
    // worker shard, parent/child stitched via span ids.
    const std::string merged = obs::merged_chrome_json(
        obs::TraceBuffer::global().snapshot(), worker_tracks);
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "%s", merged.c_str());
      std::fclose(f);
      std::fprintf(stderr, "wrote merged trace (%zu worker shard(s)) to %s\n",
                   worker_tracks.size(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    }
  }
  if (status_server) status_server->stop();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "haccs_server: %s\n", e.what());
  return 1;
}
