// haccs_server — the coordinator half of a real multi-process federated run.
//
// Listens on localhost, waits for --workers haccs_worker processes, receives
// each hosted client's P(y) summary over the wire (paper §IV-A's one-time
// uplink), clusters from those summaries, then drives the standard
// FederatedTrainer round loop with every local-training job shipped as a
// TrainJob frame and every update collected as a ClientUpdate frame.
//
// The workload is rebuilt from the same flags + seed on both sides, so the
// run is directly comparable to the single-process `haccs_run` with the
// identical flags — tools/check.sh pins that the two report the same final
// accuracy.
//
//   ./haccs_server --workers=2 --port=0 --port-file=/tmp/port
//       --rounds=5 --clients=12 --per-round=4 --summary-json=/tmp/s.json
//   ./haccs_worker --worker-id=0 --workers=2 --port-file=/tmp/port ... &
//   ./haccs_worker --worker-id=1 --workers=2 --port-file=/tmp/port ... &
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "examples/multiprocess_common.hpp"
#include "src/common/table.hpp"
#include "src/core/pipeline.hpp"
#include "src/fl/net_driver.hpp"
#include "src/net/tcp.hpp"
#include "src/obs/obs.hpp"
#include "src/select/random_selector.hpp"
#include "src/stats/summary_codec.hpp"

namespace {

void print_usage() {
  std::puts(
      "haccs_server — multi-process federated coordinator\n"
      "  --workers=N          worker processes to wait for (default 1)\n"
      "  --port=P             listen port; 0 = ephemeral (default 4242)\n"
      "  --port-file=F        write the resolved port to F (for launchers)\n"
      "  --strategy=S         random|haccs-py (default haccs-py)\n"
      "  --rho=R              Eq. 7 trade-off (default 0.5)\n"
      "  --accept-timeout-ms=T  per-worker accept deadline (default 30000)\n"
      "  --io-timeout-ms=T    per-frame send/recv deadline (default 120000)\n"
      "  --summary-json=F     machine-readable run summary\n"
      "workload (must match the workers'): --dataset --clients --per-round\n"
      "  --rounds --classes --seed --full --noise-scale\n"
      "telemetry: --trace --metrics --events --log-level");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace haccs;
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }

  bench::ExperimentConfig exp;
  exp.apply_flags(flags);
  // Wire telemetry (net_bytes_*_total, net_frames_corrupt_total) is the
  // point of this binary, so the metrics pillar is always on here — the
  // summary reports actual transported bytes, not just priced ones.
  obs::set_metrics_enabled(true);
  const auto num_workers =
      static_cast<std::size_t>(flags.get_int("workers", 1));
  const auto port_flag = static_cast<std::uint16_t>(flags.get_int("port", 4242));
  const std::string port_file = flags.get_string("port-file", "");
  const std::string strategy = flags.get_string("strategy", "haccs-py");
  const double rho = flags.get_double("rho", 0.5);
  const int accept_timeout_ms =
      static_cast<int>(flags.get_int("accept-timeout-ms", 30000));
  const int io_timeout_ms =
      static_cast<int>(flags.get_int("io-timeout-ms", 120000));
  const std::string summary_json = flags.get_string("summary-json", "");
  flags.check_unused();
  if (num_workers == 0) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 1;
  }

  // Both processes rebuild the identical federation from the same flags;
  // only parameters, updates, and summaries cross the wire.
  const data::FederatedDataset fed = examples::build_federation(exp);
  auto engine_config = exp.make_engine_config(fed);

  // ---- accept the worker fleet ----
  net::TcpListener listener(port_flag);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", listener.port());
    std::fclose(f);
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%u, waiting for %zu worker(s)\n",
               listener.port(), num_workers);

  std::vector<std::unique_ptr<net::Transport>> transports(num_workers);
  std::vector<core::ClientSummary> summaries(fed.num_clients());
  std::vector<bool> have_summary(fed.num_clients(), false);
  for (std::size_t accepted = 0; accepted < num_workers; ++accepted) {
    auto transport = listener.accept(accept_timeout_ms);
    if (!transport) {
      std::fprintf(stderr, "timed out waiting for worker %zu of %zu\n",
                   accepted + 1, num_workers);
      return 1;
    }
    net::Frame frame;
    if (transport->recv(&frame, io_timeout_ms) != net::TransportStatus::Ok ||
        frame.type != net::MessageType::Hello) {
      std::fprintf(stderr, "handshake with %s failed (no Hello frame)\n",
                   transport->peer().c_str());
      return 1;
    }
    const net::HelloMsg hello = net::decode_hello(frame);
    if (hello.worker_id >= num_workers || transports[hello.worker_id]) {
      std::fprintf(stderr, "bad or duplicate worker id %u (expected 0..%zu)\n",
                   hello.worker_id, num_workers - 1);
      return 1;
    }
    // §IV-A uplink: one P(y) summary per hosted client, once per run.
    for (std::uint32_t s = 0; s < hello.num_clients; ++s) {
      if (transport->recv(&frame, io_timeout_ms) != net::TransportStatus::Ok ||
          frame.type != net::MessageType::Summary) {
        std::fprintf(stderr, "worker %u: summary %u of %u never arrived\n",
                     hello.worker_id, s + 1, hello.num_clients);
        return 1;
      }
      const net::SummaryMsg msg = net::decode_summary(frame);
      if (msg.client_id >= fed.num_clients()) {
        std::fprintf(stderr, "summary for unknown client %u\n", msg.client_id);
        return 1;
      }
      core::ClientSummary summary;
      summary.kind = stats::SummaryKind::Response;
      summary.response = stats::decode_response_summary(msg);
      summaries[msg.client_id] = std::move(summary);
      have_summary[msg.client_id] = true;
    }
    std::fprintf(stderr, "worker %u connected (%s), hosting %u client(s)\n",
                 hello.worker_id, transport->peer().c_str(), hello.num_clients);
    transports[hello.worker_id] = std::move(transport);
  }

  // ---- strategy ----
  core::HaccsConfig haccs;
  haccs.rho = rho;
  haccs.initial_loss = engine_config.initial_loss;
  haccs.summary = stats::SummaryKind::Response;
  std::unique_ptr<fl::ClientSelector> selector;
  if (strategy == "random") {
    selector = std::make_unique<select::RandomSelector>();
  } else if (strategy == "haccs-py") {
    for (std::size_t c = 0; c < fed.num_clients(); ++c) {
      if (!have_summary[c]) {
        std::fprintf(stderr,
                     "no summary for client %zu — check each worker's "
                     "--worker-id/--workers against --workers here\n",
                     c);
        return 1;
      }
    }
    // Cluster from the summaries the workers actually sent: the wire-borne
    // equivalent of core::cluster_clients (and identical to it for the same
    // flags, since the f64 tables round-trip bit-exactly).
    const auto labels =
        core::cluster_distances(core::summary_distances(summaries), haccs);
    selector = std::make_unique<core::HaccsSelector>(labels, haccs);
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (random|haccs-py)\n",
                 strategy.c_str());
    return 1;
  }

  // ---- train over the transports ----
  fl::TransportDispatcherConfig dispatch_config;
  dispatch_config.work.local = engine_config.local;
  dispatch_config.work.fedprox =
      engine_config.algorithm == fl::LocalAlgorithm::FedProx;
  dispatch_config.work.fedprox_mu = engine_config.fedprox_mu;
  dispatch_config.work.compression = engine_config.compression;
  dispatch_config.send_timeout_ms = io_timeout_ms;
  dispatch_config.recv_timeout_ms = io_timeout_ms;
  std::vector<net::Transport*> worker_ptrs;
  worker_ptrs.reserve(transports.size());
  for (const auto& t : transports) worker_ptrs.push_back(t.get());
  fl::TransportDispatcher dispatcher(std::move(worker_ptrs), dispatch_config);
  engine_config.dispatcher = &dispatcher;

  fl::FederatedTrainer trainer(
      fed, core::default_model_factory(fed, examples::kModelSeed),
      engine_config);
  std::fprintf(stderr, "running %s: %zu clients, %zu/round, %zu rounds, "
               "%zu worker process(es)\n",
               selector->name().c_str(), fed.num_clients(),
               engine_config.clients_per_round, engine_config.rounds,
               num_workers);
  const fl::TrainingHistory history = trainer.run(*selector);

  // ---- wind down the fleet ----
  net::EvalReportMsg report;
  report.epoch = engine_config.rounds;
  report.accuracy = history.final_accuracy();
  report.loss = history.records().empty()
                    ? 0.0
                    : history.records().back().global_loss;
  for (const auto& t : transports) {
    t->send(net::encode_eval_report(report), io_timeout_ms);
    t->send(net::encode_shutdown(), io_timeout_ms);
  }

  // ---- report ----
  const auto& wire = net::NetMetrics::get();
  Table summary({"metric", "value"});
  summary.add_row({"strategy", selector->name()});
  summary.add_row({"workers", std::to_string(num_workers)});
  summary.add_row({"final_accuracy", Table::num(history.final_accuracy(), 4)});
  summary.add_row({"best_accuracy", Table::num(history.best_accuracy(), 4)});
  summary.add_row({"total_sim_time_s", Table::num(history.total_time(), 1)});
  summary.add_row(
      {"uplink_bytes", std::to_string(history.total_uplink_bytes())});
  summary.add_row(
      {"downlink_bytes", std::to_string(history.total_downlink_bytes())});
  summary.add_row(
      {"net_bytes_sent", std::to_string(wire.bytes_sent.value())});
  summary.add_row(
      {"net_bytes_received", std::to_string(wire.bytes_received.value())});
  summary.add_row(
      {"net_frames_corrupt", std::to_string(wire.frames_corrupt.value())});
  summary.print();

  if (!summary_json.empty()) {
    obs::JsonObject o;
    o.field("strategy", selector->name())
        .field("workers", num_workers)
        .field("rounds", engine_config.rounds)
        .field("clients", fed.num_clients())
        .field("per_round", engine_config.clients_per_round)
        .field("seed", exp.seed)
        .field("final_accuracy", history.final_accuracy())
        .field("best_accuracy", history.best_accuracy())
        .field("total_sim_time_s", history.total_time())
        .field("uplink_bytes", history.total_uplink_bytes())
        .field("downlink_bytes", history.total_downlink_bytes())
        .field("net_bytes_sent", wire.bytes_sent.value())
        .field("net_bytes_received", wire.bytes_received.value())
        .field("net_frames_corrupt", wire.frames_corrupt.value());
    std::FILE* f = std::fopen(summary_json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", summary_json.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", o.str().c_str());
    std::fclose(f);
    std::fprintf(stderr, "wrote run summary to %s\n", summary_json.c_str());
  }

  obs::flush();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "haccs_server: %s\n", e.what());
  return 1;
}
