// haccs_agg — the mid-tier of a hierarchical aggregation tree (DESIGN.md
// §5j).
//
// One aggregator process fronts a contiguous slice of the federation's
// workers: downstream it runs a poll/epoll FanInServer (one socket per
// worker, per-connection buffering and backpressure), upstream it speaks the
// normal framed protocol to the root over a single TCP connection. It is
// deliberately workload-agnostic — it never loads a dataset or model; update
// weights come off the wire (sample_count) and the global parameter vector
// is captured from the TrainJobs it relays, so the same binary serves any
// experiment the root and workers agree on.
//
// Lifecycle: bind the fan-in port, publish it (--listen-port-file), connect
// upstream, collect Hello + Summary from every subtree worker, announce the
// subtree with TopologyHello, then run rounds until the root's Shutdown
// (relayed downstream) or the upstream link dies.
//
// Exit codes: 0 orderly shutdown; 1 usage/configuration error; 2 handshake
// or upstream failure; 3 connect retries exhausted.
//
//   ./haccs_agg --agg-id=0 --aggs=2 --workers=4 --port-file=/tmp/root.port
//       --listen-port-file=/tmp/agg0.port
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "bench/harness.hpp"
#include "examples/multiprocess_common.hpp"
#include "src/common/logging.hpp"
#include "src/fl/net_driver.hpp"
#include "src/hier/mid_tier.hpp"
#include "src/net/chaos.hpp"
#include "src/net/status.hpp"
#include "src/net/tcp.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"

namespace {

constexpr int kExitRunFailed = 2;
constexpr int kExitConnectExhausted = 3;

void print_usage() {
  std::puts(
      "haccs_agg — mid-tier aggregator of a hierarchical federation\n"
      "  --agg-id=I            this aggregator's id in [0, --aggs)\n"
      "  --aggs=A              total aggregators (default 1)\n"
      "  --workers=W           federation-wide worker count; this process\n"
      "                        fronts workers [I*W/A, (I+1)*W/A) (A must\n"
      "                        divide W)\n"
      "upstream (root): --host=H --port=P or --port-file=F\n"
      "downstream (workers): --listen-port=P (default 0 = ephemeral)\n"
      "  --listen-port-file=F  publish the bound fan-in port to F\n"
      "aggregation: --chunk-params=N   f64 elements per SubtreeChunk\n"
      "                        (default 16384)\n"
      "  --max-update-norm=X   update validation threshold; must match the\n"
      "                        root's engine (default 0 = off)\n"
      "  --round-timeout-ms=T  straggler deadline per round (default 30000)\n"
      "  --handshake-timeout-ms=T  downstream Hello/Summary budget\n"
      "                        (default 60000)\n"
      "  --heartbeat-interval-ms=T  upstream liveness cadence (default 0)\n"
      "backpressure: --max-outbound-frames=N  per-connection queue cap\n"
      "                        before a slow worker is shed (default 64)\n"
      "ops: --status-port=P --status-port-file=F  /metrics /status /healthz\n"
      "chaos (upstream fault injection): --chaos-seed --chaos-drop\n"
      "  --chaos-dup --chaos-reorder --chaos-corrupt --chaos-truncate\n"
      "  --chaos-disconnect\n"
      "misc: --reconnect-attempts=N --reconnect-backoff-ms=T --log-level=L\n"
      "exit codes: 0 shutdown, 1 error, 2 run failed, 3 connect exhausted");
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace haccs;
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }

  // Byte accounting across the tree is this binary's contract with the
  // smoke test, so the metrics pillar is always on here.
  obs::set_metrics_enabled(true);
  const std::string log_level = flags.get_string("log-level", "");
  if (!log_level.empty()) {
    set_log_level(parse_log_level(log_level));
  } else if (const char* env_level = std::getenv("HACCS_LOG");
             env_level != nullptr && env_level[0] != '\0') {
    set_log_level(parse_log_level(env_level));
  }

  const std::string host = flags.get_string("host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(flags.get_int("port", 4242));
  const std::string port_file = flags.get_string("port-file", "");
  const auto agg_id = static_cast<std::uint32_t>(flags.get_int("agg-id", 0));
  const auto num_aggs = static_cast<std::uint32_t>(flags.get_int("aggs", 1));
  const auto num_workers =
      static_cast<std::uint32_t>(flags.get_int("workers", 1));
  const auto listen_port =
      static_cast<std::uint16_t>(flags.get_int("listen-port", 0));
  const std::string listen_port_file =
      flags.get_string("listen-port-file", "");
  const auto chunk_params =
      static_cast<std::size_t>(flags.get_int("chunk-params", 16384));
  const double max_update_norm = flags.get_double("max-update-norm", 0.0);
  const int round_timeout_ms =
      static_cast<int>(flags.get_int("round-timeout-ms", 30000));
  const int handshake_timeout_ms =
      static_cast<int>(flags.get_int("handshake-timeout-ms", 60000));
  const int heartbeat_interval_ms =
      static_cast<int>(flags.get_int("heartbeat-interval-ms", 0));
  const auto max_outbound_frames =
      static_cast<std::size_t>(flags.get_int("max-outbound-frames", 64));
  const int status_port = static_cast<int>(flags.get_int("status-port", -1));
  const std::string status_port_file =
      flags.get_string("status-port-file", "");
  const int reconnect_attempts =
      static_cast<int>(flags.get_int("reconnect-attempts", 10));
  const int reconnect_backoff_ms =
      static_cast<int>(flags.get_int("reconnect-backoff-ms", 200));
  const net::ChaosOptions chaos = examples::parse_chaos_flags(flags);
  flags.check_unused();

  if (num_aggs == 0 || agg_id >= num_aggs) {
    std::fprintf(stderr, "--agg-id must lie in [0, --aggs)\n");
    return 1;
  }
  if (num_workers == 0 || num_workers % num_aggs != 0) {
    std::fprintf(stderr, "--aggs must divide --workers evenly\n");
    return 1;
  }
  if (chunk_params == 0) {
    std::fprintf(stderr, "--chunk-params must be >= 1\n");
    return 1;
  }
  // Aggregator span ids must stay distinct from the root's and every
  // worker's in a merged trace; workers salt bits 40+, aggregators 52+.
  obs::set_span_id_salt(static_cast<std::uint64_t>(agg_id + 1) << 52);

  hier::MidTierConfig config;
  config.agg_id = agg_id;
  config.num_aggs = num_aggs;
  config.num_workers = num_workers;
  config.chunk_params = chunk_params;
  config.max_update_norm = max_update_norm;
  config.heartbeat_interval_ms = heartbeat_interval_ms;
  config.round_timeout_ms = round_timeout_ms;
  config.handshake_timeout_ms = handshake_timeout_ms;
  config.fanin.port = listen_port;
  config.fanin.max_outbound_frames = max_outbound_frames;

  // The board rows are this aggregator's subtree workers; the `queued`
  // gauge mirrors FanInServer::outbound_queued (the §5j backpressure
  // depth), surfaced per-peer on /status and in haccs_top.
  fl::ServingStatusBoard status_board(num_workers / num_aggs);
  config.status_board = &status_board;

  hier::MidTierAggregator agg(config);
  if (!listen_port_file.empty()) {
    examples::write_port_file(listen_port_file, agg.port());
  }
  std::fprintf(stderr,
               "agg %u/%u: fan-in on 127.0.0.1:%u, fronting workers "
               "[%u, %u)\n",
               agg_id, num_aggs, agg.port(), agg.worker_begin(),
               agg.worker_end());

  std::optional<net::StatusServer> status_server;
  if (status_port >= 0) {
    const auto started = std::chrono::steady_clock::now();
    net::StatusEndpoints endpoints;
    endpoints.metrics_text = [] {
      return obs::Registry::global().to_prometheus();
    };
    endpoints.status_json = [&status_board, agg_id, num_aggs, started] {
      const double uptime_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      auto counter = [](const char* name) {
        return obs::Registry::global().counter(name).value();
      };
      obs::JsonObject o;
      o.field("tier", "mid")
          .field("agg_id", agg_id)
          .field("aggs", num_aggs)
          .field("uptime_s", uptime_s)
          .field("rounds", counter("hier_rounds_total"))
          .field("upstream_bytes_sent",
                 counter("hier_upstream_bytes_sent_total"))
          .field("upstream_bytes_received",
                 counter("hier_upstream_bytes_received_total"))
          .field_raw("serving", status_board.to_json());
      return o.str();
    };
    status_server.emplace(static_cast<std::uint16_t>(status_port),
                          std::move(endpoints));
    if (!status_port_file.empty()) {
      examples::write_port_file(status_port_file, status_server->port());
    }
    std::fprintf(stderr,
                 "status endpoint on 127.0.0.1:%u (/metrics /status "
                 "/healthz)\n",
                 status_server->port());
  }

  // Connect upstream with capped exponential backoff — the root may still
  // be binding when a scripted launch starts every tier at once.
  Rng jitter_rng(0x7ec0ffeeULL ^ agg_id);
  std::unique_ptr<net::Transport> upstream;
  for (int attempt = 0; !upstream; ++attempt) {
    if (attempt >= reconnect_attempts) {
      std::fprintf(stderr, "agg %u: %d connect attempts failed; giving up\n",
                   agg_id, attempt);
      return kExitConnectExhausted;
    }
    if (!port_file.empty()) {
      port = examples::wait_for_port_file(port_file, 30000);
    }
    upstream = net::connect_tcp(host, port, net::TcpConnectOptions{});
    if (!upstream) {
      const int shift = attempt < 5 ? attempt : 5;
      const double backoff = static_cast<double>(reconnect_backoff_ms) *
                             static_cast<double>(1 << shift) *
                             (0.5 + jitter_rng.uniform());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int>(backoff)));
    }
  }
  std::fprintf(stderr, "agg %u: upstream connected to %s\n", agg_id,
               upstream->peer().c_str());

  // Chaos wraps the aggregator's own outbound traffic on the upstream link
  // (the smoke's "one faulty agg uplink" scenario); the downstream fan-in
  // side stays clean.
  auto session = net::wrap_chaos(std::move(upstream), chaos);

  const bool ok = agg.run(*session);
  const auto& stats = agg.stats();
  std::fprintf(stderr,
               "agg %u: %s after %zu round(s), %zu folded, %zu rejected, "
               "%zu worker failure(s), %llu B up / %llu B down\n",
               agg_id, ok ? "shutdown" : "upstream lost", stats.rounds,
               stats.folded, stats.rejected, stats.worker_failures,
               static_cast<unsigned long long>(stats.upstream_bytes_sent),
               static_cast<unsigned long long>(
                   stats.upstream_bytes_received));

  obs::flush();
  if (status_server) status_server->stop();
  return ok ? 0 : kExitRunFailed;
} catch (const std::exception& e) {
  std::fprintf(stderr, "haccs_agg: %s\n", e.what());
  return 1;
}
