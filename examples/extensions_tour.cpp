// A tour of the features beyond the paper's core algorithm: quantile
// summaries, the Gaussian privacy mechanism, FedProx local training with
// latency-scaled partial work, checkpointing, and the fairness audit.
//
// Run: ./build/examples/extensions_tour
#include <cstdio>
#include <map>

#include "src/core/haccs_system.hpp"
#include "src/fl/evaluation.hpp"
#include "src/nn/serialize.hpp"

int main() {
  using namespace haccs;

  data::SyntheticImageConfig image_config =
      data::SyntheticImageConfig::femnist_like(10);
  image_config.height = 16;
  image_config.width = 16;
  data::SyntheticImageGenerator generator(image_config);

  data::PartitionConfig partition;
  partition.num_clients = 20;
  partition.min_samples = 80;
  partition.max_samples = 160;
  partition.test_samples = 25;
  partition.style_brightness_stddev = 0.2;  // per-device feature variation
  partition.style_contrast_stddev = 0.08;
  Rng rng(61);
  const auto federation =
      data::partition_majority_label(generator, partition, rng);

  // 1. Quantile summaries (Q(X|y)) under the *Gaussian* mechanism: a more
  //    compact feature summary, a different DP guarantee ((eps, delta)).
  core::HaccsConfig haccs;
  haccs.summary = stats::SummaryKind::Quantile;
  haccs.privacy.epsilon = 0.5;
  haccs.privacy.delta = 1e-5;
  haccs.privacy.mechanism = stats::NoiseMechanism::Gaussian;
  haccs.rho = 0.5;

  // 2. FedProx local training: stragglers do partial work against a
  //    proximal objective instead of gating the round entirely.
  fl::EngineConfig engine;
  engine.rounds = 100;
  engine.clients_per_round = 5;
  engine.eval_every = 5;
  engine.local.sgd.learning_rate = 0.08;
  engine.algorithm = fl::LocalAlgorithm::FedProx;
  engine.fedprox_mu = 0.01;
  engine.seed = 19;

  core::HaccsSystem system(federation, haccs, engine,
                           core::default_model_factory(federation, 99));
  const auto clusters = system.cluster_labels();
  std::size_t singleton_count = 0;
  {
    std::vector<int> copy = clusters;
    std::map<int, int> sizes;
    for (int c : copy) {
      if (c >= 0) ++sizes[c];
    }
    for (const auto& [c, n] : sizes) {
      if (n == 1) ++singleton_count;
    }
  }
  std::printf("Q(X|y) + Gaussian(eps=0.5, delta=1e-5): %zu singleton "
              "clusters among %zu clients\n",
              singleton_count, federation.num_clients());

  const auto history = system.train();
  std::printf("FedProx training: final accuracy %.3f, TTA@70%% = %s s\n",
              history.final_accuracy(),
              fl::format_tta(history.time_to_accuracy(0.7)).c_str());

  // 3. Fairness audit: who actually participated, and how evenly does the
  //    model serve the fleet?
  const auto counts = history.selection_counts(federation.num_clients());
  const auto& per_client = system.trainer().final_per_client_accuracy();
  std::printf("participation Gini: %.3f (0 = even)\n",
              fl::participation_gini(counts));
  std::printf("per-client accuracy spread (stddev): %.3f\n",
              fl::accuracy_spread(per_client));

  // 4. Checkpoint the trained model and prove the round trip.
  auto model = core::default_model_factory(federation, 99)();
  model.set_parameters(system.trainer().final_parameters());
  const std::string path = "/tmp/haccs_extensions_tour.ckpt";
  nn::save_parameters(model, path);

  auto reloaded = core::default_model_factory(federation, 99)();
  nn::load_into(reloaded, path);
  const auto check = fl::evaluate(reloaded, federation.clients[0].test);
  std::printf("checkpoint reloaded: accuracy on client 0 = %.3f\n",
              check.accuracy);
  std::printf("checkpoint written to %s\n", path.c_str());
  return 0;
}
